//! The torture driver and its online linearizability monitor.
//!
//! # Protocol
//!
//! Worker threads execute their seeded op streams in fixed-size *epochs*
//! separated by a double [`Barrier`] wait. Between the two waits the barrier
//! leader samples the backend's logical clock and publishes it as the
//! **finality frontier**: every record with `invoke < frontier` has been
//! pushed into its recorder and will never change again (no op is in flight
//! at the barrier, and the clock is monotonic, so later ops get larger
//! timestamps). The epoch boundary is also a *quiescent cut* of the history
//! — every epoch-`k` op returns before any epoch-`k+1` op is invoked — so
//! window sizes stay bounded by `threads × epoch_ops` regardless of run
//! length.
//!
//! A free-running monitor thread repeatedly snapshots each object's
//! [`HistoryRecorder`], slices off the final prefix below the frontier,
//! cuts it into quiescent windows, and advances the set of feasible
//! specification states with [`linearization_states`] — the same
//! frontier-set threading as [`sbu_spec::linearize::check_windowed`], run
//! incrementally. An empty feasible set is a linearizability violation,
//! reported with the offending window.
//!
//! # Crash injection
//!
//! With [`StressConfig::crash_threads`] > 0, the lowest-numbered threads
//! abandon one operation in their **final** epoch (pending ops suppress
//! every later cut, so earlier crashes would grow windows without bound):
//! even threads abandon *before* executing (the op may only be dropped),
//! odd threads abandon *after* executing but before recording the response
//! (the op's effect is visible, so the checker must let it take effect) —
//! both balanced-extension outcomes of Definition 3.1 on real histories.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sbu_sim::HistoryRecorder;
use sbu_spec::linearize::{linearization_states, CheckError};
use sbu_spec::{history::History, Pid, SequentialSpec};
use std::collections::HashSet;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// How threads spread their operations over the objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionProfile {
    /// Half of all traffic hammers object 0; the rest is uniform.
    Hot,
    /// Uniform over all objects.
    Spread,
}

impl std::str::FromStr for ContentionProfile {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hot" => Ok(ContentionProfile::Hot),
            "spread" => Ok(ContentionProfile::Spread),
            other => Err(format!("unknown profile {other:?} (hot|spread)")),
        }
    }
}

impl std::fmt::Display for ContentionProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContentionProfile::Hot => write!(f, "hot"),
            ContentionProfile::Spread => write!(f, "spread"),
        }
    }
}

/// Configuration of one torture run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Number of worker OS threads (= processors `Pid(0..threads)`).
    pub threads: usize,
    /// Operations issued per thread (including at most one abandoned op).
    pub ops_per_thread: usize,
    /// Master seed; every thread derives its own stream deterministically.
    pub seed: u64,
    /// Number of independent object instances.
    pub objects: usize,
    /// Contention profile over the objects.
    pub profile: ContentionProfile,
    /// Insert random `yield_now`/spin perturbation between operations.
    pub perturb: bool,
    /// How many threads abandon one op in their final epoch (≤ `threads`).
    pub crash_threads: usize,
    /// Ops per thread per epoch; `0` picks `max(1, 64 / threads)` so a
    /// window never exceeds the checker's [`MAX_OPS`] bound.
    pub epoch_ops: usize,
}

impl StressConfig {
    /// A small, fast default: 4 threads × 1000 ops, seed 42, 4 objects.
    pub fn new(threads: usize, ops_per_thread: usize, seed: u64) -> Self {
        Self {
            threads,
            ops_per_thread,
            seed,
            objects: 4,
            profile: ContentionProfile::Hot,
            perturb: true,
            crash_threads: 0,
            epoch_ops: 0,
        }
    }

    /// Effective ops per epoch (resolves the `0 = auto` rule).
    pub fn effective_epoch_ops(&self) -> usize {
        if self.epoch_ops > 0 {
            self.epoch_ops
        } else {
            (64 / self.threads.max(1)).max(1)
        }
    }
}

/// One object instance under torture: its sequential specification's initial
/// state plus the closure executing an op against the real implementation.
pub struct StressObject<'a, S: SequentialSpec> {
    /// Initial specification state.
    pub init: S,
    /// Execute one operation on the real (native) object.
    #[allow(clippy::type_complexity)]
    pub exec: Box<dyn Fn(Pid, &S::Op) -> S::Resp + Send + Sync + 'a>,
}

/// Outcome of a torture run.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// Worker threads used.
    pub threads: usize,
    /// Operations issued (completed + abandoned).
    pub total_ops: usize,
    /// Operations that returned.
    pub completed_ops: usize,
    /// Operations abandoned mid-flight (recorded as pending).
    pub pending_ops: usize,
    /// Quiescent windows consumed by the online monitor.
    pub windows_checked: usize,
    /// Largest window (in ops) the monitor had to check.
    pub largest_window: usize,
    /// Windows skipped because they exceeded [`MAX_OPS`] (0 in any sane
    /// configuration; a non-zero value means the run was *not* fully
    /// verified).
    pub overflow_windows: usize,
    /// Human-readable descriptions of linearizability violations.
    pub violations: Vec<String>,
    /// Wall-clock duration of the run (workers + monitor).
    pub elapsed: Duration,
    /// Aggregated observability counters from the run's registry (empty
    /// unless the workload attached instruments and the `obs` feature is
    /// on). [`torture`] itself leaves this empty; workload entry points
    /// ([`crate::workloads::run_workload`]) fill it in.
    pub metrics: sbu_obs::Snapshot,
}

impl TortureReport {
    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.completed_ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Whether every checked window linearized and none overflowed.
    pub fn all_linearizable(&self) -> bool {
        self.violations.is_empty() && self.overflow_windows == 0
    }

    /// Panic with the first violation if the run was not clean.
    pub fn assert_clean(&self) {
        assert_eq!(
            self.overflow_windows, 0,
            "{} windows exceeded MAX_OPS and were not verified",
            self.overflow_windows
        );
        assert!(
            self.violations.is_empty(),
            "linearizability violated: {}",
            self.violations[0]
        );
    }
}

impl std::fmt::Display for TortureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "threads={} ops={} (completed={} pending={})",
            self.threads, self.total_ops, self.completed_ops, self.pending_ops
        )?;
        writeln!(
            f,
            "windows={} largest={} overflowed={} throughput={:.0} ops/s",
            self.windows_checked,
            self.largest_window,
            self.overflow_windows,
            self.ops_per_sec()
        )?;
        if self.violations.is_empty() {
            write!(f, "every window linearizable")
        } else {
            write!(f, "VIOLATIONS ({}):", self.violations.len())?;
            for v in &self.violations {
                write!(f, "\n  {v}")?;
            }
            Ok(())
        }
    }
}

/// Best-effort rendering of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// SplitMix64 finalizer: decorrelates per-thread streams from one seed.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Per-object state of the online monitor.
struct ObjMonitor<S> {
    /// Records (in invoke order) already consumed into closed windows.
    consumed: usize,
    /// Feasible specification states after the last consumed window.
    states: Vec<S>,
    /// Checking stopped (violation reported or window overflow).
    poisoned: bool,
}

/// Run one torture: spawn `cfg.threads` workers driving `objects` through
/// `gen_op`-generated operations, with the online monitor checking closed
/// quiescent windows concurrently. `clock` must return strictly monotonic
/// timestamps shared by all threads (the native backend's
/// `op_invoke`/`op_return` hooks).
pub fn torture<'a, S, C, G>(
    cfg: &StressConfig,
    clock: C,
    objects: Vec<StressObject<'a, S>>,
    gen_op: G,
) -> TortureReport
where
    S: SequentialSpec + Hash + Eq + Send + Sync,
    S::Op: Send + Sync,
    S::Resp: Send + Sync,
    C: Fn(Pid) -> u64 + Send + Sync,
    G: Fn(&mut SmallRng, Pid, usize) -> S::Op + Send + Sync,
{
    assert!(cfg.threads >= 1, "at least one worker thread");
    assert!(!objects.is_empty(), "at least one object");
    assert!(
        cfg.crash_threads <= cfg.threads,
        "cannot crash more threads than exist"
    );
    let epoch_ops = cfg.effective_epoch_ops();
    let epochs = cfg.ops_per_thread.div_ceil(epoch_ops).max(1);

    let recorders: Vec<HistoryRecorder<S::Op, S::Resp>> =
        objects.iter().map(|_| HistoryRecorder::new()).collect();
    let inits: Vec<S> = objects.iter().map(|o| o.init.clone()).collect();
    #[allow(clippy::type_complexity)]
    let execs: Vec<&(dyn Fn(Pid, &S::Op) -> S::Resp + Send + Sync)> =
        objects.iter().map(|o| o.exec.as_ref()).collect();

    let barrier = Barrier::new(cfg.threads);
    let frontier = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    // First panic caught inside a worker's op loop; re-raised after the run
    // drains (a panicking worker must keep hitting barriers, or the other
    // workers deadlock and the monitor spins forever).
    let failure: Mutex<Option<String>> = Mutex::new(None);

    let started = Instant::now();
    let monitor_out = std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(cfg.threads);
        for tid in 0..cfg.threads {
            let recorders = &recorders;
            let execs = &execs;
            let barrier = &barrier;
            let frontier = &frontier;
            let clock = &clock;
            let gen_op = &gen_op;
            let failure = &failure;
            workers.push(scope.spawn(move || {
                let pid = Pid(tid);
                let mut rng = SmallRng::seed_from_u64(cfg.seed ^ mix(tid as u64 + 1));
                // Where (if at all) this thread abandons an op: an op index
                // inside the final epoch, so the pending record cannot
                // suppress quiescent cuts of any *earlier* epoch.
                let final_epoch_start = (epochs - 1) * epoch_ops;
                let crash_at: Option<usize> = (tid < cfg.crash_threads
                    && cfg.ops_per_thread > final_epoch_start)
                    .then(|| rng.gen_range(final_epoch_start..cfg.ops_per_thread));
                let drop_mode = tid % 2 == 0;
                let mut crashed = false;

                for epoch in 0..epochs {
                    let lo = epoch * epoch_ops;
                    let hi = ((epoch + 1) * epoch_ops).min(cfg.ops_per_thread);
                    // An op that panics (a broken object invariant) must not
                    // strand the other workers at the barrier: catch it, stop
                    // issuing ops, keep synchronizing, re-raise at the end.
                    let epoch_run = catch_unwind(AssertUnwindSafe(|| {
                        for k in lo..hi {
                            if crashed {
                                break;
                            }
                            let obj = match cfg.profile {
                                ContentionProfile::Hot => {
                                    if rng.gen_bool(0.5) {
                                        0
                                    } else {
                                        rng.gen_range(0..recorders.len())
                                    }
                                }
                                ContentionProfile::Spread => rng.gen_range(0..recorders.len()),
                            };
                            let op = gen_op(&mut rng, pid, obj);
                            let invoke = clock(pid);
                            let token = recorders[obj].begin(pid, op.clone(), invoke);
                            if crash_at == Some(k) && drop_mode {
                                // Abandoned before taking a single step: the op
                                // never executed, so it may only be dropped (or
                                // linearized as a no-effect suffix).
                                crashed = true;
                                continue;
                            }
                            let resp = (execs[obj])(pid, &op);
                            if crash_at == Some(k) {
                                // Executed but never acknowledged: the effect is
                                // visible, so the checker must be able to let
                                // the pending op take effect.
                                crashed = true;
                                continue;
                            }
                            let ret = clock(pid);
                            recorders[obj].finish(token, resp, ret);
                            if cfg.perturb {
                                match rng.gen_range(0u32..8) {
                                    0 => std::thread::yield_now(),
                                    1 => {
                                        for _ in 0..rng.gen_range(1u32..64) {
                                            std::hint::spin_loop();
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }));
                    if let Err(payload) = epoch_run {
                        let mut slot = failure.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(format!(
                                "worker {tid} panicked mid-operation: {}",
                                panic_message(payload.as_ref())
                            ));
                        }
                        crashed = true;
                    }
                    // Double barrier: after the first wait no op is in
                    // flight (abandoned ones are permanently pending), so
                    // the leader's clock sample is a finality frontier AND a
                    // quiescent cut; the second wait keeps the next epoch's
                    // invocations behind the published sample.
                    if barrier.wait().is_leader() {
                        frontier.store(clock(pid), Ordering::Release);
                    }
                    barrier.wait();
                }
            }));
        }

        let monitor = scope.spawn(|| {
            let mut mons: Vec<ObjMonitor<S>> = inits
                .iter()
                .map(|init| ObjMonitor {
                    consumed: 0,
                    states: vec![init.clone()],
                    poisoned: false,
                })
                .collect();
            let mut windows_checked = 0usize;
            let mut largest_window = 0usize;
            let mut overflow_windows = 0usize;
            let mut violations: Vec<String> = Vec::new();
            loop {
                let final_pass = done.load(Ordering::Acquire);
                let horizon = if final_pass {
                    u64::MAX
                } else {
                    frontier.load(Ordering::Acquire)
                };
                for (obj, mon) in mons.iter_mut().enumerate() {
                    if mon.poisoned {
                        continue;
                    }
                    advance_monitor(
                        obj,
                        mon,
                        &recorders[obj],
                        horizon,
                        final_pass,
                        &mut windows_checked,
                        &mut largest_window,
                        &mut overflow_windows,
                        &mut violations,
                    );
                }
                if final_pass {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            (
                windows_checked,
                largest_window,
                overflow_windows,
                violations,
            )
        });

        for w in workers {
            w.join().expect("worker thread panicked");
        }
        done.store(true, Ordering::Release);
        monitor.join().expect("monitor thread panicked")
    });
    let (windows_checked, largest_window, overflow_windows, violations) = monitor_out;
    if let Some(msg) = failure.into_inner().unwrap() {
        panic!("{msg}");
    }

    let total_ops: usize = recorders.iter().map(|r| r.len()).sum();
    let pending_ops: usize = recorders.iter().map(|r| r.history().pending_count()).sum();
    TortureReport {
        threads: cfg.threads,
        total_ops,
        completed_ops: total_ops - pending_ops,
        pending_ops,
        windows_checked,
        largest_window,
        overflow_windows,
        violations,
        elapsed: started.elapsed(),
        metrics: sbu_obs::Snapshot::default(),
    }
}

/// Consume newly final records of one object: cut them into quiescent
/// windows, advance the feasible-state set through each closed window.
#[allow(clippy::too_many_arguments)]
fn advance_monitor<S>(
    obj: usize,
    mon: &mut ObjMonitor<S>,
    recorder: &HistoryRecorder<S::Op, S::Resp>,
    horizon: u64,
    final_pass: bool,
    windows_checked: &mut usize,
    largest_window: &mut usize,
    overflow_windows: &mut usize,
    violations: &mut Vec<String>,
) where
    S: SequentialSpec + Hash + Eq,
{
    let h = recorder.history();
    let recs = h.ops();
    // `history()` sorts by invoke; timestamps are unique (shared fetch_add
    // clock), so the previously consumed prefix is unchanged.
    let final_end = recs.partition_point(|r| r.invoke < horizon);
    let mut start = mon.consumed;
    while start < final_end {
        // Grow the window until a quiescent cut (or the horizon) closes it.
        let mut end = start;
        let mut max_ret: Option<u64> = Some(0);
        let mut closed = false;
        while end < final_end {
            let r = &recs[end];
            if end > start {
                if let Some(m) = max_ret {
                    if m < r.invoke {
                        closed = true;
                        break;
                    }
                }
            }
            max_ret = match (max_ret, r.ret) {
                (Some(m), Some(ret)) => Some(m.max(ret)),
                _ => None,
            };
            end += 1;
        }
        if !closed {
            // Trailing group: closed if everything in it returned before
            // the horizon (nothing final or future can overlap it), or
            // unconditionally on the final pass (pending ops never return).
            closed = final_pass || matches!(max_ret, Some(m) if m < horizon);
            if !closed {
                return;
            }
        }
        let window: History<S::Op, S::Resp> = recs[start..end].iter().cloned().collect();
        *largest_window = (*largest_window).max(window.len());
        let mut next: Vec<S> = Vec::new();
        let mut seen: HashSet<S> = HashSet::new();
        for state in &mon.states {
            match linearization_states(&window, state.clone()) {
                Ok(outcomes) => {
                    for (s, _) in outcomes {
                        if seen.insert(s.clone()) {
                            next.push(s);
                        }
                    }
                }
                Err(CheckError::TooManyOps { ops: _ }) => {
                    // Not a linearizability verdict: the window outgrew the
                    // checker's capacity. Counted separately so the report
                    // can suggest a smaller epoch instead of crying "bug".
                    *overflow_windows += 1;
                    mon.poisoned = true;
                    return;
                }
                Err(e @ (CheckError::Invalid(_) | CheckError::SpansCrash { .. })) => {
                    violations.push(format!("object {obj}: malformed history: {e}"));
                    mon.poisoned = true;
                    return;
                }
            }
        }
        *windows_checked += 1;
        if next.is_empty() {
            violations.push(describe_violation::<S>(obj, &window));
            mon.poisoned = true;
            return;
        }
        mon.states = next;
        mon.consumed = end;
        start = end;
    }
}

/// Render a violated window compactly (first few ops) for the report.
fn describe_violation<S>(obj: usize, window: &History<S::Op, S::Resp>) -> String
where
    S: SequentialSpec,
{
    let lo = window.iter().map(|r| r.invoke).min().unwrap_or(0);
    let hi = window
        .iter()
        .filter_map(|r| r.ret)
        .max()
        .unwrap_or(u64::MAX);
    let mut ops = String::new();
    for (i, r) in window.iter().enumerate() {
        if i >= 8 {
            ops.push_str(&format!(" … (+{} more)", window.len() - 8));
            break;
        }
        ops.push_str(&format!(
            " {}:{:?}->{:?}[{},{:?}]",
            r.pid.0, r.op, r.resp, r.invoke, r.ret
        ));
    }
    format!(
        "object {obj}: window t=[{lo},{hi}] of {} ops NOT linearizable:{ops}",
        window.len()
    )
}
