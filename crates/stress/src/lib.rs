//! # sbu-stress — native multi-thread torture with online monitoring
//!
//! The simulator (`sbu-sim`) verifies the paper's constructions under a
//! deterministic conductor; this crate closes the complementary gap: it runs
//! the same objects on **real OS threads over the native atomics backend**
//! ([`sbu_mem::native::NativeMem`]) and checks every recorded quiescent
//! window for linearizability *while the run is still going* (Wing–Gong
//! runtime monitoring, via [`sbu_spec::linearize::check_windowed`]'s
//! building blocks).
//!
//! * [`harness`] — the torture driver: seeded per-thread op streams, an
//!   epoch/barrier protocol that publishes a *finality frontier* of the
//!   logical clock, a free-running monitor thread consuming closed windows,
//!   plus fault injection (yield/spin perturbation and crash-by-abandonment,
//!   which exercises Definition 3.1's balanced extension on real histories).
//! * [`inject`] — seeded mutation of the native backend ([`inject::TornMem`])
//!   that weakens the sticky-bit CAS on a schedule, to prove the monitor
//!   has teeth.
//! * [`workloads`] — ready-made workloads over the paper's objects: raw
//!   sticky bits, the Figure 2 `Jam` byte, leader election, the sticky bit
//!   from initializable consensus, and the bounded universal construction
//!   wrapping a counter and a queue.
//! * [`cli`] — typed option parsing ([`cli::Options::parse`]) shared by
//!   `examples/stress.rs` and the E10 benchmark driver.
//! * [`verdict`] — typed process-exit statuses ([`verdict::ExitStatus`]):
//!   distinct codes for honest-run violations, escaped injected faults and
//!   capacity overflows, so CI asserts on status instead of grepping.
//! * [`crash`] — crash–restart torture over [`sbu_mem::DurableMem`]: eras
//!   separated by seeded crashes of victim threads (including mid-operation
//!   abandonment with torn-persist footprints), object recovery at
//!   restarts, and an offline **durable linearizability** verdict from
//!   [`sbu_spec::linearize::check_durable`].
//!
//! Entry point for humans: `cargo run --release --example stress`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod crash;
pub mod harness;
pub mod inject;
pub mod verdict;
pub mod workloads;

pub use cli::{Options, OptionsError, USAGE};
pub use crash::{
    crash_restart_torture, run_crash_restart, CrashRestartReport, CrashWorkload, DurableObject,
};
pub use harness::{torture, ContentionProfile, StressConfig, StressObject, TortureReport};
pub use inject::{Inject, TornMem};
pub use verdict::{ExitAccumulator, ExitStatus};
pub use workloads::{jam_value_for, run_jam_backoff, run_lock_based_jam, run_workload, Workload};
