//! Backend conformance, run where the stress harness consumes it: the
//! native backend (single-thread mode) and the transparent `TornMem`
//! wrapper must both satisfy the `sbu-mem` semantics contract, so backend
//! drift is caught next to the code that depends on it.

use sbu_mem::conformance::{exercise_data_mem, exercise_word_mem};
use sbu_mem::native::NativeMem;
use sbu_stress::{Inject, TornMem};

#[test]
fn native_backend_conforms_word_and_data() {
    let mut mem: NativeMem<u32> = NativeMem::new();
    exercise_word_mem(&mut mem);
    exercise_data_mem(&mut mem, 17u32, 42u32);
}

#[test]
fn transparent_torn_mem_conforms_word_and_data() {
    let mut mem = TornMem::new(NativeMem::<u32>::new(), Inject::None);
    exercise_word_mem(&mut mem);
    exercise_data_mem(&mut mem, 17u32, 42u32);
    assert_eq!(mem.lies_told(), 0, "Inject::None must never lie");
}

#[test]
fn durable_wrapper_flags_flush_overlapping_a_concurrent_op() {
    // Definition 4.1 under persistency, on the native backend: a flush (or
    // tas reset) racing another processor's operation whose writes are not
    // yet fenced must be *reported* as a protocol violation, not silently
    // succeed. The flusher is a real concurrent thread, ordered only by the
    // channel handshake — the overlap window is genuine.
    use sbu_mem::{DurableMem, Pid, WordMem};
    use std::sync::mpsc;

    let mut mem: DurableMem<NativeMem<u32>> = DurableMem::new(NativeMem::new());
    let s = mem.alloc_sticky_bit();
    let t = mem.alloc_tas();
    let mem = &mem;
    let (jammed_tx, jammed_rx) = mpsc::channel();
    let (flushed_tx, flushed_rx) = mpsc::channel();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            // Pid 0's operation: jam + tas, fence deferred — still in
            // flight while pid 1 reinitializes both locations.
            assert!(mem.sticky_jam(Pid(0), s, true).is_success());
            assert!(!mem.tas_test_and_set(Pid(0), t));
            jammed_tx.send(()).unwrap();
            flushed_rx.recv().unwrap();
            mem.persist(Pid(0)); // the fence arrives too late
        });
        scope.spawn(move || {
            jammed_rx.recv().unwrap();
            mem.sticky_flush(Pid(1), s);
            mem.tas_reset(Pid(1), t);
            flushed_tx.send(()).unwrap();
        });
    });
    let v = mem.violations();
    assert_eq!(v.len(), 2, "both reinitializations flagged: {v:?}");
    assert!(
        v[0].contains("sticky bit") && v[0].contains("pid 1"),
        "{}",
        v[0]
    );
    assert!(v[1].contains("tas bit"), "{}", v[1]);
}

#[test]
fn lying_torn_mem_deviates_from_the_spec() {
    // Sanity check that the injection actually changes observable behavior
    // (otherwise the "monitor has teeth" test below would be vacuous).
    use sbu_mem::{JamOutcome, Pid, Tri, WordMem};
    let mut mem = TornMem::with_period(NativeMem::<u32>::new(), Inject::TornJam, 1);
    let s = mem.alloc_sticky_bit();
    assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
    // Disagreeing jam reported successful: sequentially impossible.
    assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Success);
    assert_eq!(mem.sticky_read(Pid(0), s), Tri::One);
    assert!(mem.lies_told() >= 1);
}
