//! Backend conformance, run where the stress harness consumes it: the
//! native backend (single-thread mode) and the transparent `TornMem`
//! wrapper must both satisfy the `sbu-mem` semantics contract, so backend
//! drift is caught next to the code that depends on it.

use sbu_mem::conformance::{exercise_data_mem, exercise_word_mem};
use sbu_mem::native::NativeMem;
use sbu_stress::{Inject, TornMem};

#[test]
fn native_backend_conforms_word_and_data() {
    let mut mem: NativeMem<u32> = NativeMem::new();
    exercise_word_mem(&mut mem);
    exercise_data_mem(&mut mem, 17u32, 42u32);
}

#[test]
fn transparent_torn_mem_conforms_word_and_data() {
    let mut mem = TornMem::new(NativeMem::<u32>::new(), Inject::None);
    exercise_word_mem(&mut mem);
    exercise_data_mem(&mut mem, 17u32, 42u32);
    assert_eq!(mem.lies_told(), 0, "Inject::None must never lie");
}

#[test]
fn lying_torn_mem_deviates_from_the_spec() {
    // Sanity check that the injection actually changes observable behavior
    // (otherwise the "monitor has teeth" test below would be vacuous).
    use sbu_mem::{JamOutcome, Pid, Tri, WordMem};
    let mut mem = TornMem::with_period(NativeMem::<u32>::new(), Inject::TornJam, 1);
    let s = mem.alloc_sticky_bit();
    assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
    // Disagreeing jam reported successful: sequentially impossible.
    assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Success);
    assert_eq!(mem.sticky_read(Pid(0), s), Tri::One);
    assert!(mem.lies_told() >= 1);
}
