//! End-to-end torture smokes: every workload on real threads, crash
//! injection (both balanced-extension outcomes), and the "monitor has
//! teeth" checks — a seeded mutation of the native sticky-bit CAS must be
//! flagged by the online checker.
//!
//! The full-length torture is `#[ignore]`d; CI's gate runs these short
//! versions (deterministic seeds, a few seconds total) and the deep job
//! runs everything via `--ignored`.

use sbu_stress::{run_workload, Inject, StressConfig, Workload};

fn cfg(threads: usize, ops: usize, seed: u64) -> StressConfig {
    let mut c = StressConfig::new(threads, ops, seed);
    c.objects = 2;
    c
}

#[test]
fn every_workload_linearizes_briefly() {
    for (w, ops) in [
        (Workload::Sticky, 400),
        (Workload::Jam, 200),
        (Workload::Election, 200),
        (Workload::ConsensusSticky, 200),
        (Workload::UniversalCounter, 48),
        (Workload::UniversalQueue, 48),
    ] {
        let report = run_workload(w, &cfg(3, ops, 42), Inject::None);
        report.assert_clean();
        assert_eq!(report.total_ops, 3 * ops, "workload {w}");
        assert_eq!(report.pending_ops, 0, "workload {w}");
        assert!(report.windows_checked > 0, "workload {w}");
    }
}

#[test]
fn crashed_threads_leave_pending_ops_that_still_linearize() {
    // Threads 0 (drop mode: abandons before executing) and 1 (take-effect
    // mode: executes, never acknowledges) each abandon one op in their
    // final epoch — both balanced-extension outcomes of Definition 3.1 on
    // a real multi-thread history.
    let mut c = cfg(4, 300, 7);
    c.crash_threads = 2;
    let report = run_workload(Workload::Sticky, &c, Inject::None);
    report.assert_clean();
    assert_eq!(report.pending_ops, 2, "one abandoned op per crashed thread");
    assert!(report.completed_ops > 0);
}

#[test]
fn crash_works_on_the_universal_construction_too() {
    let mut c = cfg(3, 40, 11);
    c.crash_threads = 2;
    let report = run_workload(Workload::UniversalCounter, &c, Inject::None);
    report.assert_clean();
    assert_eq!(report.pending_ops, 2);
}

#[test]
fn torn_jam_injection_is_caught() {
    // A torn CAS reports a disagreeing Jam as successful. Two completed
    // successful jams of opposite values can never linearize on one sticky
    // bit (no Flush in the workload), so once a lie fires the frontier-set
    // monitor must empty out and report a violation.
    let report = run_workload(Workload::Sticky, &cfg(4, 500, 42), Inject::TornJam);
    assert!(
        !report.all_linearizable(),
        "online monitor failed to catch torn-jam injection: {report}"
    );
    assert!(!report.violations.is_empty());
}

#[test]
fn stale_read_injection_is_caught() {
    // A stale read reports `⊥` after the bit was pinned by completed jams
    // in earlier windows; `⊥` is unreachable again without Flush.
    let report = run_workload(Workload::Sticky, &cfg(4, 500, 42), Inject::StaleRead);
    assert!(
        !report.all_linearizable(),
        "online monitor failed to catch stale-read injection: {report}"
    );
}

#[test]
fn reports_are_seed_deterministic_in_op_counts() {
    let a = run_workload(Workload::Sticky, &cfg(2, 300, 1234), Inject::None);
    let b = run_workload(Workload::Sticky, &cfg(2, 300, 1234), Inject::None);
    a.assert_clean();
    b.assert_clean();
    assert_eq!(a.total_ops, b.total_ops);
    assert_eq!(a.completed_ops, b.completed_ops);
}

/// The full torture: longer runs over every workload, with perturbation and
/// crashes. Minutes of wall clock — kept behind `--ignored` (CI deep job,
/// `scripts/ci.sh --full`).
#[test]
#[ignore = "full torture run; invoked by ci.sh --full"]
fn full_torture_all_workloads() {
    for w in Workload::all() {
        let ops = match w {
            Workload::UniversalCounter | Workload::UniversalQueue => 400,
            _ => 5_000,
        };
        let mut c = StressConfig::new(8, ops, 0xC0FFEE);
        c.objects = 4;
        c.crash_threads = 3;
        let report = run_workload(w, &c, Inject::None);
        report.assert_clean();
        assert_eq!(report.pending_ops, 3, "workload {w}");
    }
    // And the monitor's teeth, at full length.
    let mut c = StressConfig::new(8, 5_000, 0xC0FFEE);
    c.objects = 4;
    let report = run_workload(Workload::Sticky, &c, Inject::TornJam);
    assert!(!report.all_linearizable());
}
