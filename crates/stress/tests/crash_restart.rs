//! Crash–restart torture end-to-end: honest torn-persist policies keep the
//! recoverable objects durably linearizable across many seeded runs; the
//! fence-defying [`TornPersist::Lying`] policy must be *caught* by
//! `check_durable`. This is the native-thread counterpart of the simulator's
//! exhaustive DPOR exploration in `sbu-sticky/tests/dpor_recovery.rs`.

use sbu_mem::TornPersist;
use sbu_stress::{run_crash_restart, CrashWorkload, StressConfig};

fn cfg(threads: usize, seed: u64) -> StressConfig {
    let mut cfg = StressConfig::new(threads, 48, seed);
    cfg.objects = 2;
    cfg.crash_threads = 1;
    cfg
}

#[test]
fn recoverable_jam_survives_seeded_torn_crashes() {
    // The seeded coin tears an independent subset of the unfenced writes at
    // every crash — both outcomes of every in-flight jam get exercised
    // across seeds, and all of them must durably linearize.
    for seed in 0..10 {
        let report = run_crash_restart(
            CrashWorkload::RecoverableJam,
            &cfg(3, seed),
            4,
            TornPersist::Seeded(seed ^ 0x5eed),
        );
        assert!(report.crashes >= 1, "seed {seed}: no crashes happened");
        report.assert_clean();
    }
}

#[test]
fn recoverable_counter_survives_crashes_with_two_victims() {
    for seed in 0..5 {
        let mut c = cfg(4, seed);
        c.crash_threads = 2;
        let report = run_crash_restart(
            CrashWorkload::RecoverableCounter,
            &c,
            4,
            TornPersist::Persist,
        );
        assert!(
            report.crashes >= 1 && report.pending_ops >= 1,
            "seed {seed}"
        );
        report.assert_clean();
    }
}

#[test]
fn lying_torn_persist_is_caught_across_seeds() {
    for seed in [7, 19, 23] {
        let report = run_crash_restart(
            CrashWorkload::RecoverableJam,
            &cfg(3, seed),
            6,
            TornPersist::Lying,
        );
        assert!(
            !report.all_durably_linearizable(),
            "seed {seed}: lying hardware escaped the durable checker:\n{report}"
        );
    }
}

#[test]
#[ignore = "100 seeded honest iterations; invoked by ci.sh --full"]
fn honest_policies_pass_one_hundred_seeds() {
    for seed in 0..100u64 {
        for policy in [
            TornPersist::Persist,
            TornPersist::Lose,
            TornPersist::Seeded(seed),
        ] {
            run_crash_restart(CrashWorkload::RecoverableJam, &cfg(3, seed), 4, policy)
                .assert_clean();
        }
        run_crash_restart(
            CrashWorkload::RecoverableCounter,
            &cfg(3, seed),
            4,
            TornPersist::Persist,
        )
        .assert_clean();
    }
}
