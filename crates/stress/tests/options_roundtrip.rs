//! Property tests for `sbu_stress::Options::parse`.
//!
//! Two contracts the scenario reports and CI smokes rely on:
//!
//! 1. **Round-trip**: any valid [`Options`] renders ([`Options::to_args`])
//!    to an argument vector that re-parses to an *equal* `Options`, so a
//!    report's recorded "reproduce with" line is trustworthy.
//! 2. **Totality**: arbitrary argument soup never panics — it parses, or it
//!    yields a typed [`OptionsError`].

use proptest::prelude::*;
use sbu_mem::TornPersist;
use sbu_stress::{ContentionProfile, Inject, Options, OptionsError, USAGE};

/// A strategy over fully valid `Options` values (every invariant the parser
/// enforces holds by construction).
fn valid_options() -> impl Strategy<Value = Options> {
    let torn = prop_oneof![
        Just(TornPersist::Persist),
        Just(TornPersist::Lose),
        (0u64..1_000_000).prop_map(TornPersist::Seeded),
        Just(TornPersist::Lying),
    ];
    let workload = prop_oneof![
        Just(None),
        Just(Some("sticky".to_string())),
        Just(Some("jam".to_string())),
        Just(Some("universal-counter".to_string())),
        Just(Some("recoverable-jam".to_string())),
        Just(Some("all".to_string())),
    ];
    let front = (
        1usize..64,        // threads
        0usize..1_000_000, // total_ops
        any::<u64>(),      // seed
        workload,          // workload
        0usize..32,        // objects
        prop_oneof![
            Just(ContentionProfile::Hot),
            Just(ContentionProfile::Spread)
        ],
    );
    let back = (
        prop_oneof![
            Just(Inject::None),
            Just(Inject::TornJam),
            Just(Inject::StaleRead)
        ],
        prop_oneof![Just(None), (0usize..16).prop_map(Some)], // crash
        0usize..256,                                          // epoch_ops
        proptest::bool::ANY,                                  // crash_restart
        torn,
        (1u64..50, 1usize..12), // iters, eras
    );
    (front, back).prop_map(
        |(
            (threads, total_ops, seed, workload, objects, profile),
            (inject, crash, epoch_ops, crash_restart, torn, (iters, eras)),
        )| Options {
            threads,
            total_ops,
            seed,
            workload,
            objects,
            profile,
            inject,
            crash,
            epoch_ops,
            crash_restart,
            torn,
            eras,
            iters,
        },
    )
}

/// Tokens for the argument-soup property: real flags, plausible values, and
/// outright garbage.
fn arg_token() -> impl Strategy<Value = String> {
    prop_oneof![
        prop_oneof![
            Just("--threads"),
            Just("--ops"),
            Just("--seed"),
            Just("--workload"),
            Just("--objects"),
            Just("--profile"),
            Just("--inject"),
            Just("--crash"),
            Just("--epoch-ops"),
            Just("--crash-restart"),
            Just("--torn"),
            Just("--eras"),
            Just("--iters"),
            Just("--help"),
            Just("-h"),
        ]
        .prop_map(String::from),
        (0u64..100_000).prop_map(|n| n.to_string()),
        prop_oneof![
            Just("hot"),
            Just("spread"),
            Just("torn-jam"),
            Just("stale-read"),
            Just("lying"),
            Just("seeded:"),
            Just("seeded:9"),
            Just("seeded:x"),
            Just(""),
            Just("-"),
            Just("--"),
            Just("¯\\_(ツ)_/¯"),
            Just("-1"),
            Just("18446744073709551616"),
            Just("none"),
            Just("frobnicate"),
        ]
        .prop_map(String::from),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// to_args → parse is the identity on valid configurations.
    #[test]
    fn options_roundtrip_through_to_args(opts in valid_options()) {
        let args = opts.to_args();
        let reparsed = Options::parse(args.clone());
        prop_assert_eq!(
            reparsed.as_ref(),
            Ok(&opts),
            "args {:?} did not reparse", args
        );
        // And the rendering is stable: re-rendering the reparse is
        // byte-identical (a canonical form, usable as a report key).
        prop_assert_eq!(reparsed.unwrap().to_args(), args);
    }

    /// Arbitrary token soup parses or fails with a typed error — no panics,
    /// no process exits.
    #[test]
    fn malformed_inputs_yield_typed_errors(args in prop::collection::vec(arg_token(), 0..12)) {
        match Options::parse(args.iter().cloned()) {
            Ok(opts) => {
                // Whatever parsed must round-trip too.
                prop_assert_eq!(Options::parse(opts.to_args()), Ok(opts));
            }
            Err(e) => {
                // Every error renders a non-empty, typed message.
                prop_assert!(!e.to_string().is_empty());
                match e {
                    OptionsError::Help
                    | OptionsError::UnknownFlag(_)
                    | OptionsError::MissingValue(_)
                    | OptionsError::BadValue { .. }
                    | OptionsError::Invalid(_) => {}
                }
            }
        }
    }
}

/// `--help` surfaces as the typed `Help` "error" and the canonical USAGE
/// text is a complete, printable help screen: the example driver prints it
/// and exits 0, so this pins both halves of that contract.
#[test]
fn help_prints_usage_and_exits_cleanly() {
    assert_eq!(Options::parse(["--help"]), Err(OptionsError::Help));
    assert_eq!(Options::parse(["-h"]), Err(OptionsError::Help));
    // Help wins even mid-stream, before later junk can bail.
    assert_eq!(
        Options::parse(["--threads", "4", "--help", "--frobnicate"]),
        Err(OptionsError::Help)
    );
    assert!(USAGE.starts_with("usage: stress"));
    // Every flag the parser understands is documented.
    for flag in [
        "--threads",
        "--ops",
        "--seed",
        "--workload",
        "--objects",
        "--profile",
        "--inject",
        "--crash",
        "--epoch-ops",
        "--crash-restart",
        "--torn",
        "--eras",
        "--iters",
    ] {
        assert!(USAGE.contains(flag), "USAGE must document {flag}");
    }
    // ... and the exit codes CI asserts on.
    assert!(USAGE.contains("exit codes"));
}
