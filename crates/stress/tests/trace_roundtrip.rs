//! Trace → history → checker round trip: a real multi-threaded native run
//! records `Invoke`/`Response` events into an `sbu_obs::TraceRing`
//! (timestamped by the backend's `op_invoke`/`op_return` clock), the drained
//! trace is adapted into an `sbu_spec::History`, and the offline
//! `check_windowed` verdict on that reconstructed history is *linearizable*
//! — the tracing path and the recording path agree end to end.
//!
//! With the `obs` feature off the ring is a no-op sink; the same run then
//! drains an empty trace, which is asserted too (recording must be
//! impossible to leave half-on).

use sbu_mem::{native::NativeMem, JamOutcome, Pid, Tri, WordMem};
use sbu_obs::{history_from_trace, Event, EventKind, TraceRing};
use sbu_spec::linearize::{check_windowed, CheckResult};
use sbu_spec::specs::{StickyOp, StickyResp, StickySpec};
use std::sync::Barrier;

const THREADS: usize = 3;
const EPOCHS: usize = 10;
const OPS_PER_EPOCH: usize = 4;

fn encode_op(op: &StickyOp) -> u64 {
    match *op {
        StickyOp::Read => 0,
        StickyOp::Jam(false) => 1,
        StickyOp::Jam(true) => 2,
        StickyOp::Flush => unreachable!("flush is never generated here"),
    }
}

fn decode_op(ev: &Event) -> StickyOp {
    match ev.a {
        0 => StickyOp::Read,
        1 => StickyOp::Jam(false),
        2 => StickyOp::Jam(true),
        other => panic!("corrupt op code {other} in trace"),
    }
}

fn encode_resp(resp: &StickyResp) -> u64 {
    match *resp {
        StickyResp::Fail => 0,
        StickyResp::Success => 1,
        StickyResp::Value(Tri::Undef) => 2,
        StickyResp::Value(Tri::Zero) => 3,
        StickyResp::Value(Tri::One) => 4,
        StickyResp::Flushed => unreachable!("flush is never generated here"),
    }
}

fn decode_resp(ev: &Event) -> StickyResp {
    match ev.a {
        0 => StickyResp::Fail,
        1 => StickyResp::Success,
        2 => StickyResp::Value(Tri::Undef),
        3 => StickyResp::Value(Tri::Zero),
        4 => StickyResp::Value(Tri::One),
        other => panic!("corrupt response code {other} in trace"),
    }
}

/// Drive a contended multi-threaded run over one native sticky bit,
/// recording every operation into the ring. Epoch barriers guarantee
/// quiescent cuts, so the reconstructed history stays within the offline
/// checker's per-window capacity.
fn recorded_run(ring: &TraceRing) {
    let mut mem: NativeMem<()> = NativeMem::new();
    let bit = mem.alloc_sticky_bit();
    let mem = &mem;
    let barrier = Barrier::new(THREADS);
    let barrier = &barrier;
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            scope.spawn(move || {
                let pid = Pid(tid);
                for epoch in 0..EPOCHS {
                    for k in 0..OPS_PER_EPOCH {
                        // A deterministic mix: each thread jams its own
                        // parity first, then reads — plenty of cross-thread
                        // disagreement for the bit to arbitrate.
                        let op = if (epoch + k + tid) % 2 == 0 {
                            StickyOp::Jam(tid % 2 == 0)
                        } else {
                            StickyOp::Read
                        };
                        let invoke = mem.op_invoke(pid);
                        ring.record(pid, EventKind::Invoke, invoke, encode_op(&op), 0);
                        let resp = match op {
                            StickyOp::Jam(v) => match mem.sticky_jam(pid, bit, v) {
                                JamOutcome::Success => StickyResp::Success,
                                JamOutcome::Fail => StickyResp::Fail,
                            },
                            StickyOp::Read => StickyResp::Value(mem.sticky_read(pid, bit)),
                            StickyOp::Flush => unreachable!(),
                        };
                        let ret = mem.op_return(pid);
                        ring.record(pid, EventKind::Response, ret, encode_resp(&resp), 0);
                    }
                    barrier.wait();
                }
            });
        }
    });
}

#[test]
fn recorded_native_run_round_trips_through_check_windowed() {
    let ring = TraceRing::new(THREADS, 2 * EPOCHS * OPS_PER_EPOCH + 8);
    recorded_run(&ring);
    let events = ring.drain();

    if !sbu_obs::enabled() {
        assert!(events.is_empty(), "a disabled ring must record nothing");
        return;
    }

    assert_eq!(ring.dropped_total(), 0, "the ring was sized for the run");
    let total_ops = THREADS * EPOCHS * OPS_PER_EPOCH;
    assert_eq!(events.len(), 2 * total_ops, "every op has both events");

    let history = history_from_trace(&events, decode_op, decode_resp);
    assert_eq!(history.len(), total_ops);
    assert_eq!(history.pending_count(), 0, "every op responded");
    history
        .validate()
        .expect("trace yields a well-formed history");

    let verdict = check_windowed(&history, StickySpec::new()).expect("within checker capacity");
    assert!(
        matches!(verdict, CheckResult::Linearizable { .. }),
        "a recorded honest native run must linearize: {verdict:?}"
    );
}
