//! Contention-control utilities shared by the native hot paths: cache-line
//! padding to kill false sharing, and bounded exponential backoff for
//! consensus retry loops.
//!
//! Neither utility touches shared memory through the [`crate::WordMem`]
//! traits, so using them never changes the step structure the simulator
//! schedules — the model-checked and native executions stay in lockstep.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes so that two neighbouring values never
/// share a cache line (128 rather than 64 covers the adjacent-line
/// prefetcher on modern x86 and the 128-byte lines of some AArch64 parts).
///
/// The workspace forbids `unsafe`, so this is the plain-Rust version of the
/// classic `crossbeam` utility: alignment alone provides the padding, since
/// an over-aligned type's size is rounded up to its alignment.
///
/// ```
/// use sbu_mem::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slot = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&slot), 128);
/// assert!(std::mem::size_of_val(&slot) >= 128);
/// ```
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` out to its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// Bounded exponential backoff for retry loops that race on consensus
/// primitives (jam races, head searches, free-cell scans).
///
/// Each [`Backoff::spin`] busy-waits for `2^k` [`std::hint::spin_loop`]
/// rounds, doubling `k` up to a fixed cap — long enough to drain a burst of
/// contention, short enough never to threaten a wait-freedom bound (the cap
/// is a constant number of *local* steps; no shared-memory operation is
/// ever skipped or delayed unboundedly).
#[derive(Debug, Clone)]
pub struct Backoff {
    step: u32,
    limit: u32,
}

impl Backoff {
    /// `2^DEFAULT_LIMIT` spins is the default ceiling for one
    /// [`Backoff::spin`] call.
    pub const DEFAULT_LIMIT: u32 = 8;

    /// A fresh backoff at the shortest delay, capped at
    /// [`Backoff::DEFAULT_LIMIT`].
    pub const fn new() -> Self {
        Self::with_limit(Self::DEFAULT_LIMIT)
    }

    /// A fresh backoff with an explicit cap: one [`Backoff::spin`] never
    /// burns more than `2^limit` rounds. `limit` is clamped to 31 so the
    /// round count always fits a `u32`; `0` means every spin is a single
    /// round (the cheapest polite pause).
    pub const fn with_limit(limit: u32) -> Self {
        Self {
            step: 0,
            limit: if limit > 31 { 31 } else { limit },
        }
    }

    /// The configured cap exponent.
    pub const fn limit(&self) -> u32 {
        self.limit
    }

    /// Busy-wait for the current delay, then double it (up to the cap).
    /// Returns the number of spin rounds waited, so callers can attribute
    /// backoff cost to an observability counter without this type knowing
    /// anything about registries.
    #[inline]
    pub fn spin(&mut self) -> u32 {
        let rounds = 1u32 << self.step;
        for _ in 0..rounds {
            std::hint::spin_loop();
        }
        if self.step < self.limit {
            self.step += 1;
        }
        rounds
    }

    /// Whether the delay has reached its cap (callers that want to fall
    /// back to a different strategy once contention persists can test this).
    pub fn is_saturated(&self) -> bool {
        self.step >= self.limit
    }

    /// Restart from the shortest delay (after a success).
    #[inline]
    pub fn reset(&mut self) {
        self.step = 0;
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn cache_padded_is_transparent_and_aligned() {
        let mut x = CachePadded::new(41u64);
        *x += 1;
        assert_eq!(*x, 42);
        assert_eq!(x.into_inner(), 42);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 128);
        let from: CachePadded<u64> = 7u64.into();
        assert_eq!(*from, 7);
    }

    #[test]
    fn padded_vec_never_shares_lines() {
        let v: Vec<CachePadded<AtomicU64>> = (0..4).map(|_| CachePadded::default()).collect();
        let a = &*v[0] as *const AtomicU64 as usize;
        let b = &*v[1] as *const AtomicU64 as usize;
        assert!(b.abs_diff(a) >= 128);
    }

    #[test]
    fn backoff_saturates_and_resets() {
        let mut b = Backoff::new();
        assert!(!b.is_saturated());
        assert_eq!(b.spin(), 1);
        assert_eq!(b.spin(), 2);
        for _ in 0..Backoff::DEFAULT_LIMIT {
            b.spin();
        }
        assert!(b.is_saturated());
        assert_eq!(b.spin(), 1 << Backoff::DEFAULT_LIMIT);
        b.reset();
        assert!(!b.is_saturated());
        assert_eq!(b.spin(), 1);
    }

    #[test]
    fn backoff_honours_a_custom_limit() {
        let mut b = Backoff::with_limit(2);
        assert_eq!(b.limit(), 2);
        assert_eq!(b.spin(), 1);
        assert_eq!(b.spin(), 2);
        assert_eq!(b.spin(), 4);
        assert!(b.is_saturated());
        assert_eq!(b.spin(), 4, "capped at 2^2 rounds");
        // Limit 0: always a single round, saturated from the start.
        let mut z = Backoff::with_limit(0);
        assert!(z.is_saturated());
        assert_eq!(z.spin(), 1);
        assert_eq!(z.spin(), 1);
        // Oversized limits are clamped so rounds fit a u32.
        assert_eq!(Backoff::with_limit(99).limit(), 31);
    }
}
