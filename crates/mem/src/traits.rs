//! The backend traits every algorithm in the workspace is generic over.

use crate::{AtomicId, DataId, Pid, SafeId, StickyBitId, StickyWordId, TasId, Tri, Word};

/// Outcome of a `Jam` operation (Definition 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JamOutcome {
    /// The value was `⊥` or already agreed; it is now the jammed value.
    Success,
    /// The value disagreed with an earlier jam.
    Fail,
}

impl JamOutcome {
    /// Whether the jam stuck.
    pub fn is_success(self) -> bool {
        self == JamOutcome::Success
    }
}

/// Word-level shared memory: allocation plus operations on every primitive
/// register kind.
///
/// Allocation (`alloc_*`) takes `&mut self` and happens during the
/// single-threaded setup phase; operations take `&self` plus the acting
/// processor's [`Pid`] and may be invoked concurrently from many threads.
///
/// # Semantics contract per backend
///
/// * `safe_*`: at least Lamport-safe. A backend may implement them
///   atomically (native); the simulator deliberately returns
///   adversary-chosen words for reads that overlap writes.
/// * `atomic_*` and `rmw`: linearizable.
/// * `sticky_*`: `jam`/`read` linearizable, `flush` **non-atomic** — the
///   caller must guarantee no concurrent operation on the same object
///   (Definition 4.1); the simulator reports a protocol violation otherwise.
/// * `tas_*`: `test_and_set` linearizable; `reset` non-atomic like `flush`.
/// * `op_invoke`/`op_return`: logical-clock hooks bracketing *object-level*
///   operations, used to build [`sbu_spec::history::History`] records with
///   real-time timestamps.
pub trait WordMem: Send + Sync {
    /// Allocate a safe register initialized to `init`.
    fn alloc_safe(&mut self, init: Word) -> SafeId;
    /// Allocate an atomic register initialized to `init`.
    fn alloc_atomic(&mut self, init: Word) -> AtomicId;
    /// Allocate a sticky bit initialized to `⊥`.
    fn alloc_sticky_bit(&mut self) -> StickyBitId;
    /// Allocate a sticky word initialized to `⊥`.
    fn alloc_sticky_word(&mut self) -> StickyWordId;
    /// Allocate a test-and-set bit initialized to `false`.
    fn alloc_tas(&mut self) -> TasId;

    /// Read a safe register. If the read overlaps a write, the result is
    /// arbitrary.
    fn safe_read(&self, pid: Pid, r: SafeId) -> Word;
    /// Write a safe register. Concurrent writes leave an arbitrary value.
    fn safe_write(&self, pid: Pid, r: SafeId, v: Word);

    /// Linearizable read of an atomic register.
    fn atomic_read(&self, pid: Pid, r: AtomicId) -> Word;
    /// Linearizable write of an atomic register.
    fn atomic_write(&self, pid: Pid, r: AtomicId, v: Word);
    /// Linearizable read-modify-write: atomically replace the contents `x`
    /// with `f(x)` and return the old value `x`.
    ///
    /// This is the paper's general RMW operation (Section 1); restricting
    /// the register's domain to `k` values yields a "k-valued RMW" — see
    /// `sbu-rmw`.
    fn rmw(&self, pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word;

    /// Allocate `count` sticky bits that form one logical multi-bit object
    /// (a Figure 2 sticky byte). Backends may co-locate such a group so
    /// that [`WordMem::sticky_read_word`] over it is a single physical
    /// load; the default simply allocates `count` independent bits, which
    /// keeps one scheduling point per bit on the simulator.
    fn alloc_sticky_bits(&mut self, count: usize) -> Vec<StickyBitId> {
        (0..count).map(|_| self.alloc_sticky_bit()).collect()
    }

    /// `Jam(v)` on a sticky bit: atomically, if the value is `⊥` or
    /// `Tri::from_bit(v)`, set it and succeed; otherwise fail.
    fn sticky_jam(&self, pid: Pid, s: StickyBitId, v: bool) -> JamOutcome;
    /// Linearizable read of a sticky bit.
    fn sticky_read(&self, pid: Pid, s: StickyBitId) -> Tri;
    /// Non-atomic reset of a sticky bit to `⊥`. Overlap with any other
    /// operation on `s` is a protocol violation.
    fn sticky_flush(&self, pid: Pid, s: StickyBitId);

    /// Snapshot `bits` as the little-endian value they spell, or `None` if
    /// any bit is still `⊥`.
    ///
    /// Each bit's value is taken at its own linearizable read, scanning
    /// from bit 0 and stopping at the first `⊥` — exactly the loop a caller
    /// would write by hand, so the default changes nothing on the
    /// simulator (per-bit scheduling points, DPOR coverage intact). The
    /// native backend overrides it to read a whole
    /// [`WordMem::alloc_sticky_bits`] group with one atomic load, which
    /// additionally makes the snapshot *atomic* — strictly stronger, hence
    /// still correct (sticky bits only ever go `⊥ → v`, so any per-bit
    /// scan result is also reachable by some single-point snapshot).
    fn sticky_read_word(&self, pid: Pid, bits: &[StickyBitId]) -> Option<Word> {
        let mut value: Word = 0;
        for (j, &s) in bits.iter().enumerate() {
            match self.sticky_read(pid, s) {
                Tri::Undef => return None,
                Tri::One => value |= 1u64 << j,
                Tri::Zero => {}
            }
        }
        Some(value)
    }

    /// `Jam(v)` on a sticky word; `v` must be `< STICKY_WORD_UNDEF`.
    fn sticky_word_jam(&self, pid: Pid, s: StickyWordId, v: Word) -> JamOutcome;
    /// Read a sticky word; `None` is `⊥`.
    fn sticky_word_read(&self, pid: Pid, s: StickyWordId) -> Option<Word>;
    /// Non-atomic reset of a sticky word to `⊥` (same caveat as
    /// [`WordMem::sticky_flush`]).
    fn sticky_word_flush(&self, pid: Pid, s: StickyWordId);

    /// Atomically set the bit and return its previous value.
    fn tas_test_and_set(&self, pid: Pid, t: TasId) -> bool;
    /// Linearizable read of a test-and-set bit.
    fn tas_read(&self, pid: Pid, t: TasId) -> bool;
    /// Non-atomic reset to `false` (same caveat as [`WordMem::sticky_flush`]).
    fn tas_reset(&self, pid: Pid, t: TasId);

    /// Mark the invocation of an object-level operation; returns the
    /// logical timestamp of the event.
    fn op_invoke(&self, pid: Pid) -> u64;
    /// Mark the response of an object-level operation; returns the logical
    /// timestamp of the event.
    fn op_return(&self, pid: Pid) -> u64;

    /// Persistence fence: every write `pid` issued so far is durable once
    /// this returns. A no-op for backends whose writes are immediately
    /// durable (native, simulator); [`crate::DurableMem`] overrides it.
    /// Recovery protocols call it before acknowledging an operation so the
    /// acknowledged effect survives a crash (`sbu-sticky::recoverable`).
    fn persist(&self, _pid: Pid) {}
}

/// Word memory extended with payload-carrying *data cells* — the safe
/// registers "large enough to hold a state of the object" of Theorem 6.6.
///
/// Data cells are safe, not atomic: the protocols in `sbu-core` follow a
/// write-once-then-publish discipline (a has-bit set after the write) so
/// that no correct execution reads a cell concurrently with its write; the
/// simulator verifies this and treats a violation as a test failure.
pub trait DataMem<P: Clone>: WordMem {
    /// Allocate a data cell, optionally pre-loaded.
    fn alloc_data(&mut self, init: Option<P>) -> DataId;
    /// Read a data cell (`None` if cleared/never written).
    fn data_read(&self, pid: Pid, d: DataId) -> Option<P>;
    /// Write a data cell.
    fn data_write(&self, pid: Pid, d: DataId, v: P);
    /// Clear a data cell back to `None` (non-atomic, like flush).
    fn data_clear(&self, pid: Pid, d: DataId);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jam_outcome_helpers() {
        assert!(JamOutcome::Success.is_success());
        assert!(!JamOutcome::Fail.is_success());
    }
}
