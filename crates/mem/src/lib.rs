//! # sbu-mem — primitive shared-memory objects
//!
//! The paper's constructions are built from a small set of primitive memory
//! objects:
//!
//! * **safe registers** (Lamport): a read that overlaps a write may return an
//!   *arbitrary* value; only reads not concurrent with any write are
//!   meaningful,
//! * **atomic registers**: linearizable read/write (used by the randomized
//!   consensus substrate and by baselines),
//! * **sticky bits** (Definition 4.1): three-valued `{⊥, 0, 1}` with atomic
//!   `Jam`/`Read` and a *non-atomic* `Flush`,
//! * **sticky words**: the multi-bit variant; the paper constructs these
//!   from `⌈log₂⌉` sticky bits (Figure 2, reproduced in `sbu-sticky`) and we
//!   additionally expose them as primitives for tractable model checking,
//! * **test-and-set bits** and a **general RMW** register, used by the
//!   RMW-hierarchy experiments (`sbu-rmw`),
//! * **data cells**: safe registers "large enough to hold a state of the
//!   object" (Theorem 6.6), carrying an arbitrary `Clone` payload.
//!
//! All algorithm code in this workspace is written once, generically over
//! the [`WordMem`]/[`DataMem`] traits, and runs on two backends:
//!
//! * [`native::NativeMem`] — real `std::sync::atomic` operations, for
//!   multi-threaded execution and throughput benchmarks. Its registers are
//!   *stronger* than safe (they are atomic), which is sound: any algorithm
//!   correct over safe registers stays correct over atomic ones.
//! * `sbu-sim`'s `SimMem` — a deterministic, adversarially scheduled
//!   backend that faithfully models safe-register overlap (arbitrary values)
//!   and flags non-atomic `Flush` overlap, with crash injection and step
//!   accounting.
//!
//! Objects are *handle bundles*: construction allocates registers out of a
//! backend (`&mut` setup phase) and returns plain-old-data handles; all
//! shared state lives in the backend, so the same object value can be used
//! from many threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod contention;
pub mod durable;
pub mod native;
pub mod prelude;
mod traits;

pub use contention::{Backoff, CachePadded};
pub use durable::{DurableMem, DurableObs, TornPersist};
pub use native::{MemObs, NativeMem};
pub use sbu_spec::specs::Tri;
pub use sbu_spec::Pid;
pub use traits::{DataMem, JamOutcome, WordMem};

/// The word type of every register in the workspace.
pub type Word = u64;

/// Sticky words reserve this sentinel to encode `⊥`; user payloads must be
/// strictly smaller. Cell indices and processor ids always are.
pub const STICKY_WORD_UNDEF: Word = Word::MAX;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw slot index in the owning backend.
            pub fn index(self) -> usize {
                self.0
            }
        }
    };
}

handle! {
    /// Handle to a safe word register.
    SafeId
}
handle! {
    /// Handle to an atomic word register.
    AtomicId
}
handle! {
    /// Handle to a sticky bit (Definition 4.1).
    StickyBitId
}
handle! {
    /// Handle to a primitive sticky word.
    StickyWordId
}
handle! {
    /// Handle to a test-and-set bit.
    TasId
}
handle! {
    /// Handle to a data cell (a safe register holding a payload).
    DataId
}

/// A backend-independent identifier for one memory *location* — the unit of
/// the independence relation used by partial-order-reduced schedule
/// exploration (`sbu-sim`'s `Explorer::explore_dpor`).
///
/// Two primitive steps by different processors commute iff they touch
/// different locations, or the same location without either mutating it.
/// Both phases of a two-phase operation (safe read/write, flush, reset,
/// data read/write) touch the operation's register location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocId {
    /// A safe word register.
    Safe(usize),
    /// An atomic word register.
    Atomic(usize),
    /// A sticky bit.
    StickyBit(usize),
    /// A primitive sticky word.
    StickyWord(usize),
    /// A test-and-set bit.
    Tas(usize),
    /// A data cell.
    Data(usize),
    /// A persistency fence by the given processor (`WordMem::persist`).
    /// A fence makes every unfenced write the processor participated in
    /// durable, so it conflicts with *writes to any persistent location*
    /// (sticky bits/words, test-and-set bits, data cells): re-ordering a
    /// fence past such a write changes which writes a later crash can tear.
    /// Fences of different processors commute with each other (entry
    /// removal is order-insensitive) and with volatile accesses, reads,
    /// and clock steps.
    Fence(usize),
    /// The global operation clock sampled by `op_invoke`/`op_return`.
    /// Timestamp steps conflict with each other (their relative order is
    /// what a linearizability verdict observes) but commute with ordinary
    /// memory steps.
    Clock,
    /// A whole-memory effect: a crash (which closes every window the victim
    /// held open) or a step that consumed an adversary-fabricated corrupt
    /// word (which advances shared adversary state). Conflicts with
    /// everything.
    Global,
}

impl From<SafeId> for LocId {
    fn from(id: SafeId) -> Self {
        LocId::Safe(id.0)
    }
}
impl From<AtomicId> for LocId {
    fn from(id: AtomicId) -> Self {
        LocId::Atomic(id.0)
    }
}
impl From<StickyBitId> for LocId {
    fn from(id: StickyBitId) -> Self {
        LocId::StickyBit(id.0)
    }
}
impl From<StickyWordId> for LocId {
    fn from(id: StickyWordId) -> Self {
        LocId::StickyWord(id.0)
    }
}
impl From<TasId> for LocId {
    fn from(id: TasId) -> Self {
        LocId::Tas(id.0)
    }
}
impl From<DataId> for LocId {
    fn from(id: DataId) -> Self {
        LocId::Data(id.0)
    }
}

/// How a primitive step interacts with its [`LocId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Pure observation: commutes with other reads of the same location.
    Read,
    /// Mutation, or potential mutation (jam, test-and-set, RMW, opening and
    /// closing write/flush/reset windows all count as writes).
    Write,
}

impl AccessKind {
    /// Whether two accesses of the *same* location conflict: at least one
    /// of them must be a write.
    pub fn conflicts(self, other: AccessKind) -> bool {
        matches!(self, AccessKind::Write) || matches!(other, AccessKind::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_expose_their_index() {
        assert_eq!(SafeId(3).index(), 3);
        assert_eq!(DataId(0).index(), 0);
        assert!(StickyBitId(1) < StickyBitId(2));
    }

    #[test]
    fn sticky_word_sentinel_is_max() {
        assert_eq!(STICKY_WORD_UNDEF, u64::MAX);
    }

    #[test]
    fn loc_ids_distinguish_kinds_and_indices() {
        assert_eq!(LocId::from(SafeId(2)), LocId::Safe(2));
        assert_ne!(LocId::Safe(0), LocId::Atomic(0));
        assert_ne!(LocId::StickyBit(1), LocId::StickyBit(2));
        assert_ne!(LocId::Fence(0), LocId::Fence(1));
        assert_ne!(LocId::Clock, LocId::Global);
    }

    #[test]
    fn access_kinds_conflict_iff_a_write_is_involved() {
        use AccessKind::{Read, Write};
        assert!(!Read.conflicts(Read));
        assert!(Read.conflicts(Write));
        assert!(Write.conflicts(Read));
        assert!(Write.conflicts(Write));
    }
}
