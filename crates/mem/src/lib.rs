//! # sbu-mem — primitive shared-memory objects
//!
//! The paper's constructions are built from a small set of primitive memory
//! objects:
//!
//! * **safe registers** (Lamport): a read that overlaps a write may return an
//!   *arbitrary* value; only reads not concurrent with any write are
//!   meaningful,
//! * **atomic registers**: linearizable read/write (used by the randomized
//!   consensus substrate and by baselines),
//! * **sticky bits** (Definition 4.1): three-valued `{⊥, 0, 1}` with atomic
//!   `Jam`/`Read` and a *non-atomic* `Flush`,
//! * **sticky words**: the multi-bit variant; the paper constructs these
//!   from `⌈log₂⌉` sticky bits (Figure 2, reproduced in `sbu-sticky`) and we
//!   additionally expose them as primitives for tractable model checking,
//! * **test-and-set bits** and a **general RMW** register, used by the
//!   RMW-hierarchy experiments (`sbu-rmw`),
//! * **data cells**: safe registers "large enough to hold a state of the
//!   object" (Theorem 6.6), carrying an arbitrary `Clone` payload.
//!
//! All algorithm code in this workspace is written once, generically over
//! the [`WordMem`]/[`DataMem`] traits, and runs on two backends:
//!
//! * [`native::NativeMem`] — real `std::sync::atomic` operations, for
//!   multi-threaded execution and throughput benchmarks. Its registers are
//!   *stronger* than safe (they are atomic), which is sound: any algorithm
//!   correct over safe registers stays correct over atomic ones.
//! * `sbu-sim`'s `SimMem` — a deterministic, adversarially scheduled
//!   backend that faithfully models safe-register overlap (arbitrary values)
//!   and flags non-atomic `Flush` overlap, with crash injection and step
//!   accounting.
//!
//! Objects are *handle bundles*: construction allocates registers out of a
//! backend (`&mut` setup phase) and returns plain-old-data handles; all
//! shared state lives in the backend, so the same object value can be used
//! from many threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod native;
mod traits;

pub use sbu_spec::specs::Tri;
pub use sbu_spec::Pid;
pub use traits::{DataMem, JamOutcome, WordMem};

/// The word type of every register in the workspace.
pub type Word = u64;

/// Sticky words reserve this sentinel to encode `⊥`; user payloads must be
/// strictly smaller. Cell indices and processor ids always are.
pub const STICKY_WORD_UNDEF: Word = Word::MAX;

macro_rules! handle {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw slot index in the owning backend.
            pub fn index(self) -> usize {
                self.0
            }
        }
    };
}

handle! {
    /// Handle to a safe word register.
    SafeId
}
handle! {
    /// Handle to an atomic word register.
    AtomicId
}
handle! {
    /// Handle to a sticky bit (Definition 4.1).
    StickyBitId
}
handle! {
    /// Handle to a primitive sticky word.
    StickyWordId
}
handle! {
    /// Handle to a test-and-set bit.
    TasId
}
handle! {
    /// Handle to a data cell (a safe register holding a payload).
    DataId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_expose_their_index() {
        assert_eq!(SafeId(3).index(), 3);
        assert_eq!(DataId(0).index(), 0);
        assert!(StickyBitId(1) < StickyBitId(2));
    }

    #[test]
    fn sticky_word_sentinel_is_max() {
        assert_eq!(STICKY_WORD_UNDEF, u64::MAX);
    }
}
