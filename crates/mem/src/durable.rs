//! Crash–restart persistency: the [`DurableMem`] backend wrapper.
//!
//! # The fault model
//!
//! A processor can *crash* (lose its private state and stop) and later
//! *restart*. Shared memory splits into two halves:
//!
//! * **persistent**: sticky bits, sticky words, test-and-set bits, and data
//!   cells. These model non-volatile memory — a write that has been
//!   *fenced* ([`WordMem::persist`]) survives every crash. Writes that are
//!   still in flight (issued but not fenced) are *torn* at a crash of their
//!   writers: depending on the [`TornPersist`] policy they survive, vanish,
//!   or are decided by a seeded coin — both outcomes are legal NVM
//!   behaviour, and recovery protocols must tolerate either.
//! * **volatile**: safe and atomic registers (DRAM). They survive the crash
//!   of individual processors (the memory itself did not lose power) but are
//!   wiped back to their initial values by a *full-system* crash
//!   ([`DurableMem::crash_all`]).
//!
//! The wrapper is pure bookkeeping around any inner [`WordMem`] backend: it
//! adds **no** backend operations on the hot path, so wrapping the simulator
//! preserves step counts, schedules, and the DPOR access log exactly.
//!
//! # Def 4.1 under persistency
//!
//! `Flush`/`Reset`/`Clear` are non-atomic and require quiescence
//! (Definition 4.1). Under the persistency model there is a second, equally
//! deterministic hazard: reinitializing a location that still carries an
//! *unfenced* write by another processor — either that processor's operation
//! is still in flight (a genuine Def 4.1 overlap) or its completed
//! operation's effect is not yet durable, so the flush races the fence.
//! [`DurableMem`] records such flushes as protocol violations
//! ([`DurableMem::violations`]) instead of silently succeeding, mirroring
//! the simulator's online flush-overlap monitor on the native backend.

use crate::{
    AtomicId, DataId, DataMem, JamOutcome, Pid, SafeId, StickyBitId, StickyWordId, TasId, Tri,
    Word, WordMem,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// What happens to unfenced (in-flight) persistent writes when all of their
/// writers crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornPersist {
    /// Every in-flight write survives (conservative hardware). The honest
    /// default.
    Persist,
    /// Every in-flight write of the crashed processors is lost (adversarial
    /// but *legal* NVM: an unfenced store may never leave the write buffer).
    Lose,
    /// A seeded coin decides each in-flight write independently — the
    /// native analogue of the simulator enumerating both outcomes.
    Seeded(u64),
    /// **Illegal** hardware for monitor-validation runs: a crash rolls every
    /// sticky *bit* written since the previous crash back to `⊥`, fences
    /// notwithstanding. Acknowledged effects are lost, which durable
    /// linearizability forbids — a correct checker must catch it.
    Lying,
}

impl std::str::FromStr for TornPersist {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "persist" => Ok(TornPersist::Persist),
            "lose" => Ok(TornPersist::Lose),
            "lying" => Ok(TornPersist::Lying),
            other => match other.strip_prefix("seeded:") {
                Some(seed) => seed
                    .parse::<u64>()
                    .map(TornPersist::Seeded)
                    .map_err(|e| format!("bad seed in {other:?}: {e}")),
                None => Err(format!(
                    "unknown torn-persist policy {other:?} (persist|lose|seeded:N|lying)"
                )),
            },
        }
    }
}

impl std::fmt::Display for TornPersist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TornPersist::Persist => write!(f, "persist"),
            TornPersist::Lose => write!(f, "lose"),
            TornPersist::Seeded(s) => write!(f, "seeded:{s}"),
            TornPersist::Lying => write!(f, "lying"),
        }
    }
}

/// SplitMix64 step, for the [`TornPersist::Seeded`] coin stream.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One persistent location's unfenced state: which processors have issued a
/// write to it since the last fence that covered it.
#[derive(Debug, Default, Clone)]
struct PendingWrite {
    writers: Vec<Pid>,
}

impl PendingWrite {
    fn add(&mut self, pid: Pid) {
        if !self.writers.contains(&pid) {
            self.writers.push(pid);
        }
    }
}

/// Location-kind index for bookkeeping maps and violation messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Kind {
    Bit,
    Word,
    Tas,
    Data,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Bit => "sticky bit",
            Kind::Word => "sticky word",
            Kind::Tas => "tas bit",
            Kind::Data => "data cell",
        }
    }
}

#[derive(Debug, Default)]
struct Book {
    /// Unfenced writes per (kind, slot).
    pending: HashMap<(Kind, usize), PendingWrite>,
    /// Shadow "is defined" state per (kind, slot) — distinguishes a first
    /// (mutating) jam from an agreeing re-jam without issuing extra reads.
    defined: HashSet<(Kind, usize)>,
    /// Sticky bits successfully jammed since the last crash (the
    /// [`TornPersist::Lying`] rollback set).
    era_bits: HashSet<usize>,
    /// Initial values of volatile registers, restored by a full-system
    /// crash.
    safe_init: Vec<Word>,
    atomic_init: Vec<Word>,
    /// Processors currently down (crashed, not yet restarted).
    down: HashSet<Pid>,
    /// Recorded protocol violations (flush/reset over unfenced foreign
    /// writes).
    violations: Vec<String>,
    /// Crash events so far.
    crashes: u64,
    /// Restart events so far.
    restarts: u64,
    /// SplitMix64 counter state for [`TornPersist::Seeded`].
    rng: u64,
}

impl Book {
    /// Record a write: create or extend the pending entry and mark the
    /// shadow state.
    fn write(&mut self, kind: Kind, slot: usize, pid: Pid, now_defined: bool) {
        if now_defined {
            self.defined.insert((kind, slot));
        }
        self.pending.entry((kind, slot)).or_default().add(pid);
        if kind == Kind::Bit {
            self.era_bits.insert(slot);
        }
    }

    /// An agreeing re-jam: a physical no-op unless the location is still
    /// unfenced, in which case the re-jammer becomes a writer too (its
    /// fence will then cover the value — the idempotence recovery protocols
    /// rely on).
    fn rejam(&mut self, kind: Kind, slot: usize, pid: Pid) {
        if let Some(p) = self.pending.get_mut(&(kind, slot)) {
            p.add(pid);
        }
        if kind == Kind::Bit {
            self.era_bits.insert(slot);
        }
    }

    /// Record (and allow) a flush/reset: drop all bookkeeping for the slot,
    /// flagging unfenced foreign writes first.
    fn flush(&mut self, kind: Kind, slot: usize, pid: Pid) {
        if let Some(p) = self.pending.remove(&(kind, slot)) {
            let foreign: Vec<usize> = p
                .writers
                .iter()
                .filter(|w| **w != pid)
                .map(|w| w.0)
                .collect();
            if !foreign.is_empty() {
                self.violations.push(format!(
                    "flush of {} #{} by pid {} overlaps unfenced write(s) by pid(s) {:?} \
                     (Def 4.1 / persistency)",
                    kind.name(),
                    slot,
                    pid.0,
                    foreign
                ));
            }
        }
        self.defined.remove(&(kind, slot));
        if kind == Kind::Bit {
            self.era_bits.remove(&slot);
        }
    }

    fn coin(&mut self) -> bool {
        self.rng = self.rng.wrapping_add(1);
        mix(self.rng) & 1 == 1
    }
}

/// A [`WordMem`]/[`DataMem`] wrapper adding the crash–restart persistency
/// model described in the module docs. Wrap a freshly allocated backend
/// (state written before wrapping is treated as durable).
#[derive(Debug)]
pub struct DurableMem<M> {
    inner: M,
    policy: TornPersist,
    book: Mutex<Book>,
    obs: DurableObs,
}

/// The durable wrapper's instruments (DESIGN.md §11). Detached — and
/// therefore free — until [`DurableMem::attach_obs`] registers them.
/// Crashes are driver-serialized (the harness crashes at barriers), so
/// these record on lane 0.
#[derive(Debug, Clone, Default)]
pub struct DurableObs {
    /// `mem.torn_drops` — unfenced persistent writes resolved to *lost* at
    /// a crash (`lose`/`seeded` policies).
    pub torn_drops: sbu_obs::Counter,
    /// `mem.lying_rollbacks` — fenced sticky bits illegally rolled back to
    /// `⊥` by the [`TornPersist::Lying`] policy: the injected lies a
    /// durable-linearizability checker must catch.
    pub lying_rollbacks: sbu_obs::Counter,
}

impl DurableObs {
    /// Register the wrapper's instruments in `registry`.
    pub fn register(registry: &sbu_obs::Registry) -> Self {
        DurableObs {
            torn_drops: registry.counter("mem.torn_drops"),
            lying_rollbacks: registry.counter("mem.lying_rollbacks"),
        }
    }
}

impl<M: WordMem> DurableMem<M> {
    /// Wrap `inner` with the honest [`TornPersist::Persist`] policy.
    pub fn new(inner: M) -> Self {
        Self::with_policy(inner, TornPersist::Persist)
    }

    /// Wrap `inner` with an explicit torn-persist policy.
    pub fn with_policy(inner: M, policy: TornPersist) -> Self {
        let mut book = Book::default();
        if let TornPersist::Seeded(seed) = policy {
            book.rng = seed;
        }
        Self {
            inner,
            policy,
            book: Mutex::new(book),
            obs: DurableObs::default(),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped backend (setup-time only — e.g. to
    /// call the inner backend's own `attach_obs`).
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// Attach this wrapper's instruments to `registry` (see [`DurableObs`]).
    /// With the `obs` cargo feature off this is a no-op.
    pub fn attach_obs(&mut self, registry: &sbu_obs::Registry) {
        self.obs = DurableObs::register(registry);
    }

    /// Recorded protocol violations (flush/reset overlapping unfenced
    /// foreign writes).
    pub fn violations(&self) -> Vec<String> {
        self.book.lock().violations.clone()
    }

    /// Number of crash events so far.
    pub fn crashes(&self) -> u64 {
        self.book.lock().crashes
    }

    /// Number of restart events so far.
    pub fn restarts(&self) -> u64 {
        self.book.lock().restarts
    }

    /// Whether `pid` is currently crashed (not yet restarted).
    pub fn is_down(&self, pid: Pid) -> bool {
        self.book.lock().down.contains(&pid)
    }

    /// Restart `pid` (bookkeeping only: the processor's recovery protocol —
    /// re-jam, re-scan — is the caller's job).
    pub fn restart(&self, pid: Pid) {
        let mut book = self.book.lock();
        book.restarts += 1;
        book.down.remove(&pid);
    }

    fn book(&self) -> parking_lot::MutexGuard<'_, Book> {
        self.book.lock()
    }
}

impl<M: WordMem> DurableMem<M> {
    /// Crash `pids`: their private state is gone; every unfenced persistent
    /// write whose writers *all* crashed is resolved by the torn-persist
    /// policy (survive, vanish, or coin). Volatile registers survive — only
    /// [`DurableMem::crash_all`] wipes them.
    ///
    /// Generic over the data payload `P` so torn data-cell writes can be
    /// reverted (`data_clear` is the only generic pre-state restorable).
    ///
    /// Must be called at a point where no *surviving* processor has an
    /// operation in flight on the affected objects (reverting a location
    /// under a concurrent lock-free operation is meaningless); the stress
    /// harness crashes at epoch barriers, the simulator between runs.
    pub fn crash<P: Clone>(&self, pids: &[Pid])
    where
        M: DataMem<P>,
    {
        let mut book = self.book.lock();
        book.crashes += 1;
        for &p in pids {
            book.down.insert(p);
        }
        let reverter = pids.first().copied().unwrap_or(Pid(0));

        if self.policy == TornPersist::Lying {
            // Roll every sticky bit of the era back to ⊥, fenced or not.
            let era: Vec<usize> = book.era_bits.drain().collect();
            for slot in era {
                self.inner.sticky_flush(reverter, StickyBitId(slot));
                book.defined.remove(&(Kind::Bit, slot));
                book.pending.remove(&(Kind::Bit, slot));
                self.obs.lying_rollbacks.incr(0);
            }
        }

        // Resolve unfenced writes whose writers are all down (this crash
        // included): nobody left to fence them.
        let mut doomed: Vec<(Kind, usize)> = book
            .pending
            .iter()
            .filter(|(_, p)| p.writers.iter().all(|w| book.down.contains(w)))
            .map(|(k, _)| *k)
            .collect();
        // Deterministic order: the seeded coin stream must not depend on
        // hash-map iteration.
        doomed.sort();
        for key in doomed {
            let lose = match self.policy {
                TornPersist::Persist | TornPersist::Lying => false,
                TornPersist::Lose => true,
                TornPersist::Seeded(_) => book.coin(),
            };
            book.pending.remove(&key);
            if !lose {
                continue; // reached NVM: durable from now on
            }
            self.obs.torn_drops.incr(0);
            let (kind, slot) = key;
            match kind {
                Kind::Bit => {
                    self.inner.sticky_flush(reverter, StickyBitId(slot));
                    book.era_bits.remove(&slot);
                }
                Kind::Word => self.inner.sticky_word_flush(reverter, StickyWordId(slot)),
                Kind::Tas => self.inner.tas_reset(reverter, TasId(slot)),
                Kind::Data => self.inner.data_clear(reverter, DataId(slot)),
            }
            book.defined.remove(&key);
        }
    }

    /// Full-system crash: every processor goes down at once. On top of
    /// [`DurableMem::crash`]'s torn-persist resolution, all volatile (safe
    /// and atomic) registers are wiped back to their initial values.
    pub fn crash_all<P: Clone>(&self, n_procs: usize)
    where
        M: DataMem<P>,
    {
        let pids: Vec<Pid> = (0..n_procs).map(Pid).collect();
        self.crash(&pids);
        let book = self.book.lock();
        let reverter = Pid(0);
        for (slot, &init) in book.safe_init.iter().enumerate() {
            self.inner.safe_write(reverter, SafeId(slot), init);
        }
        for (slot, &init) in book.atomic_init.iter().enumerate() {
            self.inner.atomic_write(reverter, AtomicId(slot), init);
        }
    }
}

impl<M: WordMem> WordMem for DurableMem<M> {
    fn alloc_safe(&mut self, init: Word) -> SafeId {
        let id = self.inner.alloc_safe(init);
        let book = self.book.get_mut();
        if book.safe_init.len() <= id.index() {
            book.safe_init.resize(id.index() + 1, 0);
        }
        book.safe_init[id.index()] = init;
        id
    }
    fn alloc_atomic(&mut self, init: Word) -> AtomicId {
        let id = self.inner.alloc_atomic(init);
        let book = self.book.get_mut();
        if book.atomic_init.len() <= id.index() {
            book.atomic_init.resize(id.index() + 1, 0);
        }
        book.atomic_init[id.index()] = init;
        id
    }
    fn alloc_sticky_bit(&mut self) -> StickyBitId {
        self.inner.alloc_sticky_bit()
    }
    fn alloc_sticky_bits(&mut self, count: usize) -> Vec<StickyBitId> {
        // Delegate so the inner backend can co-locate the group; the book
        // tracks bits individually either way.
        self.inner.alloc_sticky_bits(count)
    }
    fn alloc_sticky_word(&mut self) -> StickyWordId {
        self.inner.alloc_sticky_word()
    }
    fn alloc_tas(&mut self) -> TasId {
        self.inner.alloc_tas()
    }

    fn safe_read(&self, pid: Pid, r: SafeId) -> Word {
        self.inner.safe_read(pid, r)
    }
    fn safe_write(&self, pid: Pid, r: SafeId, v: Word) {
        self.inner.safe_write(pid, r, v)
    }

    fn atomic_read(&self, pid: Pid, r: AtomicId) -> Word {
        self.inner.atomic_read(pid, r)
    }
    fn atomic_write(&self, pid: Pid, r: AtomicId, v: Word) {
        self.inner.atomic_write(pid, r, v)
    }
    fn rmw(&self, pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word {
        self.inner.rmw(pid, r, f)
    }

    fn sticky_jam(&self, pid: Pid, s: StickyBitId, v: bool) -> JamOutcome {
        let out = self.inner.sticky_jam(pid, s, v);
        if out.is_success() {
            let mut book = self.book();
            if book.defined.contains(&(Kind::Bit, s.index())) {
                book.rejam(Kind::Bit, s.index(), pid);
            } else {
                book.write(Kind::Bit, s.index(), pid, true);
            }
        }
        out
    }
    fn sticky_read(&self, pid: Pid, s: StickyBitId) -> Tri {
        self.inner.sticky_read(pid, s)
    }
    fn sticky_read_word(&self, pid: Pid, bits: &[StickyBitId]) -> Option<Word> {
        // Reads never touch the book; let the inner backend use its
        // single-load snapshot if it has one.
        self.inner.sticky_read_word(pid, bits)
    }
    fn sticky_flush(&self, pid: Pid, s: StickyBitId) {
        self.book().flush(Kind::Bit, s.index(), pid);
        self.inner.sticky_flush(pid, s)
    }

    fn sticky_word_jam(&self, pid: Pid, s: StickyWordId, v: Word) -> JamOutcome {
        let out = self.inner.sticky_word_jam(pid, s, v);
        if out.is_success() {
            let mut book = self.book();
            if book.defined.contains(&(Kind::Word, s.index())) {
                book.rejam(Kind::Word, s.index(), pid);
            } else {
                book.write(Kind::Word, s.index(), pid, true);
            }
        }
        out
    }
    fn sticky_word_read(&self, pid: Pid, s: StickyWordId) -> Option<Word> {
        self.inner.sticky_word_read(pid, s)
    }
    fn sticky_word_flush(&self, pid: Pid, s: StickyWordId) {
        self.book().flush(Kind::Word, s.index(), pid);
        self.inner.sticky_word_flush(pid, s)
    }

    fn tas_test_and_set(&self, pid: Pid, t: TasId) -> bool {
        let was_set = self.inner.tas_test_and_set(pid, t);
        let mut book = self.book();
        if was_set {
            book.rejam(Kind::Tas, t.index(), pid);
        } else {
            book.write(Kind::Tas, t.index(), pid, true);
        }
        was_set
    }
    fn tas_read(&self, pid: Pid, t: TasId) -> bool {
        self.inner.tas_read(pid, t)
    }
    fn tas_reset(&self, pid: Pid, t: TasId) {
        self.book().flush(Kind::Tas, t.index(), pid);
        self.inner.tas_reset(pid, t)
    }

    fn op_invoke(&self, pid: Pid) -> u64 {
        self.inner.op_invoke(pid)
    }
    fn op_return(&self, pid: Pid) -> u64 {
        self.inner.op_return(pid)
    }

    fn persist(&self, pid: Pid) {
        // Inner call first: under a simulated backend the fence is a
        // (blocking) scheduling point, and holding the book lock across it
        // would wedge every other processor's bookkeeping. The retain runs
        // after the step is granted, i.e. at the fence's place in the
        // schedule.
        self.inner.persist(pid);
        let mut book = self.book();
        book.pending.retain(|_, p| !p.writers.contains(&pid));
    }
}

impl<P: Clone, M: DataMem<P>> DataMem<P> for DurableMem<M> {
    fn alloc_data(&mut self, init: Option<P>) -> DataId {
        let had_init = init.is_some();
        let id = self.inner.alloc_data(init);
        if had_init {
            self.book.get_mut().defined.insert((Kind::Data, id.index()));
        }
        id
    }
    fn data_read(&self, pid: Pid, d: DataId) -> Option<P> {
        self.inner.data_read(pid, d)
    }
    fn data_write(&self, pid: Pid, d: DataId, v: P) {
        self.inner.data_write(pid, d, v);
        let mut book = self.book();
        if book.defined.contains(&(Kind::Data, d.index())) {
            // Overwrite: no generic pre-state to restore, so it is treated
            // as immediately durable (the protocols in this workspace write
            // data cells once per incarnation).
            book.pending.remove(&(Kind::Data, d.index()));
        } else {
            book.write(Kind::Data, d.index(), pid, true);
        }
    }
    fn data_clear(&self, pid: Pid, d: DataId) {
        self.book().flush(Kind::Data, d.index(), pid);
        self.inner.data_clear(pid, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{exercise_data_mem, exercise_word_mem};
    use crate::native::NativeMem;

    fn honest() -> DurableMem<NativeMem<String>> {
        DurableMem::new(NativeMem::new())
    }

    #[test]
    fn durable_backend_conforms() {
        let mut mem = honest();
        exercise_word_mem(&mut mem);
        exercise_data_mem(&mut mem, "a".to_string(), "b".to_string());
        assert!(
            mem.violations().is_empty(),
            "sequential conformance must be violation-free: {:?}",
            mem.violations()
        );
    }

    #[test]
    fn fenced_jam_survives_lose_crash() {
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Lose);
        let s = mem.alloc_sticky_bit();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        mem.persist(Pid(0));
        mem.crash(&[Pid(0)]);
        assert_eq!(
            mem.sticky_read(Pid(1), s),
            Tri::One,
            "fenced write survives"
        );
    }

    #[test]
    fn unfenced_jam_lost_at_crash_under_lose() {
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Lose);
        let s = mem.alloc_sticky_bit();
        let w = mem.alloc_sticky_word();
        let t = mem.alloc_tas();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        assert!(mem.sticky_word_jam(Pid(0), w, 9).is_success());
        assert!(!mem.tas_test_and_set(Pid(0), t));
        mem.crash(&[Pid(0)]);
        assert_eq!(mem.sticky_read(Pid(1), s), Tri::Undef, "torn jam vanished");
        assert_eq!(mem.sticky_word_read(Pid(1), w), None, "torn word vanished");
        assert!(!mem.tas_read(Pid(1), t), "torn tas vanished");
    }

    #[test]
    fn unfenced_jam_survives_under_persist() {
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Persist);
        let s = mem.alloc_sticky_bit();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        mem.crash(&[Pid(0)]);
        assert_eq!(mem.sticky_read(Pid(1), s), Tri::One);
    }

    #[test]
    fn surviving_writer_keeps_the_value_alive() {
        // pid 1's agreeing re-jam makes it a writer; pid 0 crashing alone
        // cannot tear the value any more.
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Lose);
        let s = mem.alloc_sticky_bit();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        assert!(mem.sticky_jam(Pid(1), s, true).is_success());
        mem.crash(&[Pid(0)]);
        assert_eq!(mem.sticky_read(Pid(1), s), Tri::One);
        // Once pid 1 also crashes unfenced, the value is torn.
        mem.crash(&[Pid(1)]);
        assert_eq!(mem.sticky_read(Pid(2), s), Tri::Undef);
    }

    #[test]
    fn seeded_policy_is_deterministic() {
        let run = |seed: u64| -> Vec<Tri> {
            let mut mem =
                DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Seeded(seed));
            let bits: Vec<_> = (0..8).map(|_| mem.alloc_sticky_bit()).collect();
            for &b in &bits {
                assert!(mem.sticky_jam(Pid(0), b, true).is_success());
            }
            mem.crash(&[Pid(0)]);
            bits.iter().map(|&b| mem.sticky_read(Pid(1), b)).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same outcome");
        let outcome = run(7);
        assert!(outcome.contains(&Tri::One), "coin keeps some");
        assert!(outcome.contains(&Tri::Undef), "coin drops some");
    }

    #[test]
    fn lying_policy_rolls_back_fenced_bits() {
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Lying);
        let s = mem.alloc_sticky_bit();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        mem.persist(Pid(0)); // fenced — an honest policy must keep it
        mem.crash(&[Pid(0)]);
        assert_eq!(mem.sticky_read(Pid(1), s), Tri::Undef, "the lie");
    }

    #[test]
    fn full_crash_wipes_volatile_keeps_fenced_persistent() {
        let mut mem: DurableMem<NativeMem<String>> =
            DurableMem::with_policy(NativeMem::new(), TornPersist::Lose);
        let r = mem.alloc_safe(17);
        let a = mem.alloc_atomic(4);
        let s = mem.alloc_sticky_bit();
        let d = mem.alloc_data(None);
        mem.safe_write(Pid(0), r, 99);
        mem.atomic_write(Pid(0), a, 100);
        assert!(mem.sticky_jam(Pid(0), s, false).is_success());
        mem.data_write(Pid(0), d, "x".to_string());
        mem.persist(Pid(0));
        mem.crash_all(2);
        assert_eq!(mem.safe_read(Pid(0), r), 17, "volatile safe wiped to init");
        assert_eq!(mem.atomic_read(Pid(0), a), 4, "volatile atomic wiped");
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Zero, "fenced sticky kept");
        assert_eq!(
            mem.data_read(Pid(0), d),
            Some("x".to_string()),
            "fenced data kept"
        );
    }

    #[test]
    fn full_crash_drops_unfenced_data() {
        let mut mem: DurableMem<NativeMem<String>> =
            DurableMem::with_policy(NativeMem::new(), TornPersist::Lose);
        let d = mem.alloc_data(None);
        mem.data_write(Pid(0), d, "torn".to_string());
        mem.crash_all(1);
        assert_eq!(mem.data_read(Pid(0), d), None, "unfenced data cleared");
    }

    #[test]
    fn flush_over_foreign_unfenced_write_is_flagged() {
        let mut mem = honest();
        let s = mem.alloc_sticky_bit();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        mem.sticky_flush(Pid(1), s); // pid 0's write is still unfenced
        let v = mem.violations();
        assert_eq!(v.len(), 1, "exactly one violation: {v:?}");
        assert!(v[0].contains("sticky bit #0"), "{}", v[0]);
        assert!(v[0].contains("pid 1"), "{}", v[0]);
    }

    #[test]
    fn flush_after_fence_is_clean() {
        let mut mem = honest();
        let s = mem.alloc_sticky_bit();
        let w = mem.alloc_sticky_word();
        let t = mem.alloc_tas();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        assert!(mem.sticky_word_jam(Pid(0), w, 3).is_success());
        assert!(!mem.tas_test_and_set(Pid(0), t));
        mem.persist(Pid(0));
        mem.sticky_flush(Pid(1), s);
        mem.sticky_word_flush(Pid(1), w);
        mem.tas_reset(Pid(1), t);
        assert!(mem.violations().is_empty(), "{:?}", mem.violations());
    }

    #[test]
    fn restart_bookkeeping() {
        let mut mem = honest();
        let _ = mem.alloc_sticky_bit();
        assert!(!mem.is_down(Pid(0)));
        mem.crash(&[Pid(0)]);
        assert!(mem.is_down(Pid(0)));
        assert_eq!(mem.crashes(), 1);
        mem.restart(Pid(0));
        assert!(!mem.is_down(Pid(0)));
        assert_eq!(mem.restarts(), 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn attached_registry_counts_lies_and_drops() {
        let registry = sbu_obs::Registry::new(2);
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Lying);
        mem.attach_obs(&registry);
        let bits: Vec<_> = (0..3).map(|_| mem.alloc_sticky_bit()).collect();
        for &b in &bits {
            assert!(mem.sticky_jam(Pid(0), b, true).is_success());
        }
        mem.persist(Pid(0));
        mem.crash(&[Pid(0)]);
        assert_eq!(registry.snapshot().counter("mem.lying_rollbacks"), 3);

        let registry = sbu_obs::Registry::new(2);
        let mut mem = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Lose);
        mem.attach_obs(&registry);
        let s = mem.alloc_sticky_bit();
        assert!(mem.sticky_jam(Pid(0), s, true).is_success());
        mem.crash(&[Pid(0)]);
        assert_eq!(registry.snapshot().counter("mem.torn_drops"), 1);
        assert_eq!(registry.snapshot().counter("mem.lying_rollbacks"), 0);
    }

    #[test]
    fn torn_policy_parses() {
        assert_eq!("persist".parse::<TornPersist>(), Ok(TornPersist::Persist));
        assert_eq!("lose".parse::<TornPersist>(), Ok(TornPersist::Lose));
        assert_eq!(
            "seeded:9".parse::<TornPersist>(),
            Ok(TornPersist::Seeded(9))
        );
        assert_eq!("lying".parse::<TornPersist>(), Ok(TornPersist::Lying));
        assert!("tear".parse::<TornPersist>().is_err());
        assert_eq!(TornPersist::Seeded(9).to_string(), "seeded:9");
    }
}
