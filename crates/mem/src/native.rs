//! The native backend: primitives mapped directly onto `std::sync::atomic`.
//!
//! Every register kind is implemented with sequentially consistent atomics,
//! which is *stronger* than its contract requires (safe ⊆ atomic), so every
//! algorithm validated under the simulator runs unchanged — and fast — on
//! real threads. A sticky bit is a 2-bit *lane* of an `AtomicU64`: `Jam` is
//! one compare-exchange on the lane's word, confirming the paper's
//! observation that the primitive "can be easily implemented in hardware"
//! (Section 4). Bits allocated together through
//! [`WordMem::alloc_sticky_bits`] share a word, so a Figure 2 sticky byte
//! snapshots *all* of its bits with a single load
//! ([`WordMem::sticky_read_word`]); bits allocated individually get a word
//! (and a cache line) of their own, so unrelated objects never contend.
//!
//! Every register is [`CachePadded`]: the cell pool of the bounded
//! universal construction is written by many processors at once, and false
//! sharing between neighbouring registers was the dominant cost at 4+
//! threads before padding.

use crate::{
    AtomicId, CachePadded, DataId, DataMem, JamOutcome, Pid, SafeId, StickyBitId, StickyWordId,
    TasId, Tri, Word, WordMem, STICKY_WORD_UNDEF,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// 2-bit lane encodings of `{⊥, 0, 1}`.
const LANE_UNDEF: u64 = 0;
const LANE_ZERO: u64 = 1;
const LANE_ONE: u64 = 2;
const LANE_MASK: u64 = 0b11;
/// Lanes per `AtomicU64` word.
const LANES_PER_WORD: usize = 32;

#[inline]
fn lane_encode(bit: bool) -> u64 {
    if bit {
        LANE_ONE
    } else {
        LANE_ZERO
    }
}

#[inline]
fn lane_decode(raw: u64) -> Tri {
    match raw {
        LANE_UNDEF => Tri::Undef,
        LANE_ZERO => Tri::Zero,
        _ => Tri::One,
    }
}

/// Where a sticky bit lives: which packed word, and which 2-bit lane of it.
#[derive(Debug, Clone, Copy)]
struct LaneRef {
    word: u32,
    lane: u8,
}

impl LaneRef {
    #[inline]
    fn shift(self) -> u32 {
        u32::from(self.lane) * 2
    }
}

/// Shared memory backed by real atomics.
///
/// `P` is the payload type of data cells; use `()` when only word-level
/// registers are needed.
///
/// ```
/// use sbu_mem::{native::NativeMem, WordMem, JamOutcome, Pid, Tri};
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let s = mem.alloc_sticky_bit();
/// assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
/// assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Fail);
/// assert_eq!(mem.sticky_read(Pid(1), s), Tri::One);
/// ```
#[derive(Debug, Default)]
pub struct NativeMem<P> {
    safes: Vec<CachePadded<AtomicU64>>,
    atomics: Vec<CachePadded<AtomicU64>>,
    /// Packed 2-bit sticky lanes; see [`LaneRef`].
    sticky_lanes: Vec<CachePadded<AtomicU64>>,
    /// `StickyBitId` → lane location.
    sticky_map: Vec<LaneRef>,
    sticky_words: Vec<CachePadded<AtomicU64>>,
    tas_bits: Vec<CachePadded<AtomicBool>>,
    data: Vec<CachePadded<RwLock<Option<P>>>>,
    clock: CachePadded<AtomicU64>,
    obs: MemObs,
}

/// The native backend's instruments (DESIGN.md §11). Detached — and
/// therefore free — until [`NativeMem::attach_obs`] registers them.
#[derive(Debug, Clone, Default)]
pub struct MemObs {
    /// `mem.cas_retry` — failed lane compare-exchanges inside
    /// [`WordMem::sticky_jam`]: a sibling lane of the same packed word (or
    /// a racing jam on this lane) moved the word under us.
    pub cas_retry: sbu_obs::Counter,
}

impl MemObs {
    /// Register the backend's instruments in `registry`.
    pub fn register(registry: &sbu_obs::Registry) -> Self {
        MemObs {
            cas_retry: registry.counter("mem.cas_retry"),
        }
    }
}

impl<P> NativeMem<P> {
    /// An empty backend.
    pub fn new() -> Self {
        Self {
            safes: Vec::new(),
            atomics: Vec::new(),
            sticky_lanes: Vec::new(),
            sticky_map: Vec::new(),
            sticky_words: Vec::new(),
            tas_bits: Vec::new(),
            data: Vec::new(),
            clock: CachePadded::new(AtomicU64::new(0)),
            obs: MemObs::default(),
        }
    }

    /// Attach this backend's instruments to `registry` (setup-time only;
    /// see [`MemObs`] for what is recorded). With the `obs` cargo feature
    /// off this is a no-op.
    pub fn attach_obs(&mut self, registry: &sbu_obs::Registry) {
        self.obs = MemObs::register(registry);
    }

    /// Total number of allocated registers of all kinds (for footprint
    /// accounting in experiments).
    pub fn allocation_census(&self) -> AllocationCensus {
        AllocationCensus {
            safe_words: self.safes.len(),
            atomic_words: self.atomics.len(),
            sticky_bits: self.sticky_map.len(),
            sticky_words: self.sticky_words.len(),
            tas_bits: self.tas_bits.len(),
            data_cells: self.data.len(),
        }
    }

    /// Register a sticky bit on a fresh lane of `word`.
    fn push_lane(&mut self, word: usize, lane: usize) -> StickyBitId {
        self.sticky_map.push(LaneRef {
            word: word as u32,
            lane: lane as u8,
        });
        StickyBitId(self.sticky_map.len() - 1)
    }

    #[inline]
    fn lane_of(&self, s: StickyBitId) -> (LaneRef, &AtomicU64) {
        let r = self.sticky_map[s.0];
        (r, &self.sticky_lanes[r.word as usize])
    }
}

/// Counts of allocated primitives, for Theorem 6.6 space accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocationCensus {
    /// Safe word registers.
    pub safe_words: usize,
    /// Atomic word registers.
    pub atomic_words: usize,
    /// Sticky bits.
    pub sticky_bits: usize,
    /// Primitive sticky words.
    pub sticky_words: usize,
    /// Test-and-set bits.
    pub tas_bits: usize,
    /// Data cells.
    pub data_cells: usize,
}

impl AllocationCensus {
    /// Sticky-bit cost with sticky words charged at `word_bits` bits each,
    /// matching the paper's accounting where every multi-bit sticky field is
    /// ⌈log₂⌉ sticky bits (Figure 2 construction).
    pub fn sticky_bit_equivalent(&self, word_bits: usize) -> usize {
        self.sticky_bits + self.sticky_words * word_bits
    }
}

impl<P: Send + Sync> WordMem for NativeMem<P> {
    fn alloc_safe(&mut self, init: Word) -> SafeId {
        self.safes.push(CachePadded::new(AtomicU64::new(init)));
        SafeId(self.safes.len() - 1)
    }

    fn alloc_atomic(&mut self, init: Word) -> AtomicId {
        self.atomics.push(CachePadded::new(AtomicU64::new(init)));
        AtomicId(self.atomics.len() - 1)
    }

    fn alloc_sticky_bit(&mut self) -> StickyBitId {
        // A solo bit gets a word (= cache line) of its own: unrelated
        // sticky bits must never contend on one CAS word.
        self.sticky_lanes.push(CachePadded::default());
        self.push_lane(self.sticky_lanes.len() - 1, 0)
    }

    fn alloc_sticky_bits(&mut self, count: usize) -> Vec<StickyBitId> {
        // One logical object: pack up to 32 lanes per word so the whole
        // group snapshots with a single load (`sticky_read_word`).
        let mut ids = Vec::with_capacity(count);
        for chunk in 0..count.div_ceil(LANES_PER_WORD) {
            self.sticky_lanes.push(CachePadded::default());
            let word = self.sticky_lanes.len() - 1;
            let lanes = (count - chunk * LANES_PER_WORD).min(LANES_PER_WORD);
            for lane in 0..lanes {
                ids.push(self.push_lane(word, lane));
            }
        }
        ids
    }

    fn alloc_sticky_word(&mut self) -> StickyWordId {
        self.sticky_words
            .push(CachePadded::new(AtomicU64::new(STICKY_WORD_UNDEF)));
        StickyWordId(self.sticky_words.len() - 1)
    }

    fn alloc_tas(&mut self) -> TasId {
        self.tas_bits.push(CachePadded::default());
        TasId(self.tas_bits.len() - 1)
    }

    #[inline]
    fn safe_read(&self, _pid: Pid, r: SafeId) -> Word {
        self.safes[r.0].load(Ordering::SeqCst)
    }

    #[inline]
    fn safe_write(&self, _pid: Pid, r: SafeId, v: Word) {
        self.safes[r.0].store(v, Ordering::SeqCst);
    }

    #[inline]
    fn atomic_read(&self, _pid: Pid, r: AtomicId) -> Word {
        self.atomics[r.0].load(Ordering::SeqCst)
    }

    #[inline]
    fn atomic_write(&self, _pid: Pid, r: AtomicId, v: Word) {
        self.atomics[r.0].store(v, Ordering::SeqCst);
    }

    fn rmw(&self, _pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word {
        self.atomics[r.0]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |x| Some(f(x)))
            .expect("fetch_update closure never returns None")
    }

    #[inline]
    fn sticky_jam(&self, pid: Pid, s: StickyBitId, v: bool) -> JamOutcome {
        let (lane, word) = self.lane_of(s);
        let enc = lane_encode(v);
        let shift = lane.shift();
        let mut cur = word.load(Ordering::SeqCst);
        loop {
            match (cur >> shift) & LANE_MASK {
                LANE_UNDEF => {
                    match word.compare_exchange(
                        cur,
                        cur | enc << shift,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => return JamOutcome::Success,
                        // The word moved — maybe our lane, maybe a sibling
                        // lane of the same packed group; re-inspect.
                        Err(now) => {
                            self.obs.cas_retry.incr(pid.0);
                            cur = now;
                        }
                    }
                }
                decided if decided == enc => return JamOutcome::Success,
                _ => return JamOutcome::Fail,
            }
        }
    }

    #[inline]
    fn sticky_read(&self, _pid: Pid, s: StickyBitId) -> Tri {
        let (lane, word) = self.lane_of(s);
        lane_decode(word.load(Ordering::SeqCst) >> lane.shift() & LANE_MASK)
    }

    fn sticky_flush(&self, _pid: Pid, s: StickyBitId) {
        // Atomic lane-clear: Definition 4.1 only requires quiescence on
        // *this* bit, and sibling lanes of a packed group may be live.
        let (lane, word) = self.lane_of(s);
        word.fetch_and(!(LANE_MASK << lane.shift()), Ordering::SeqCst);
    }

    #[inline]
    fn sticky_read_word(&self, _pid: Pid, bits: &[StickyBitId]) -> Option<Word> {
        // One load per distinct packed word — a whole Figure 2 sticky byte
        // (≤ 32 bits) in a single atomic snapshot.
        let mut value: Word = 0;
        let mut cached: Option<(u32, u64)> = None;
        for (j, &s) in bits.iter().enumerate() {
            let lane = self.sticky_map[s.0];
            let snapshot = match cached {
                Some((w, v)) if w == lane.word => v,
                _ => {
                    let v = self.sticky_lanes[lane.word as usize].load(Ordering::SeqCst);
                    cached = Some((lane.word, v));
                    v
                }
            };
            match snapshot >> lane.shift() & LANE_MASK {
                LANE_UNDEF => return None,
                LANE_ONE => value |= 1u64 << j,
                _ => {}
            }
        }
        Some(value)
    }

    #[inline]
    fn sticky_word_jam(&self, _pid: Pid, s: StickyWordId, v: Word) -> JamOutcome {
        assert!(
            v != STICKY_WORD_UNDEF,
            "sticky word payloads must be < STICKY_WORD_UNDEF"
        );
        match self.sticky_words[s.0].compare_exchange(
            STICKY_WORD_UNDEF,
            v,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => JamOutcome::Success,
            Err(current) if current == v => JamOutcome::Success,
            Err(_) => JamOutcome::Fail,
        }
    }

    #[inline]
    fn sticky_word_read(&self, _pid: Pid, s: StickyWordId) -> Option<Word> {
        match self.sticky_words[s.0].load(Ordering::SeqCst) {
            STICKY_WORD_UNDEF => None,
            v => Some(v),
        }
    }

    fn sticky_word_flush(&self, _pid: Pid, s: StickyWordId) {
        self.sticky_words[s.0].store(STICKY_WORD_UNDEF, Ordering::SeqCst);
    }

    #[inline]
    fn tas_test_and_set(&self, _pid: Pid, t: TasId) -> bool {
        self.tas_bits[t.0].swap(true, Ordering::SeqCst)
    }

    #[inline]
    fn tas_read(&self, _pid: Pid, t: TasId) -> bool {
        self.tas_bits[t.0].load(Ordering::SeqCst)
    }

    fn tas_reset(&self, _pid: Pid, t: TasId) {
        self.tas_bits[t.0].store(false, Ordering::SeqCst);
    }

    #[inline]
    fn op_invoke(&self, _pid: Pid) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    #[inline]
    fn op_return(&self, _pid: Pid) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }
}

impl<P: Clone + Send + Sync> DataMem<P> for NativeMem<P> {
    fn alloc_data(&mut self, init: Option<P>) -> DataId {
        self.data.push(CachePadded::new(RwLock::new(init)));
        DataId(self.data.len() - 1)
    }

    #[inline]
    fn data_read(&self, _pid: Pid, d: DataId) -> Option<P> {
        self.data[d.0].read().clone()
    }

    #[inline]
    fn data_write(&self, _pid: Pid, d: DataId, v: P) {
        *self.data[d.0].write() = Some(v);
    }

    fn data_clear(&self, _pid: Pid, d: DataId) {
        *self.data[d.0].write() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn safe_and_atomic_registers_roundtrip() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_safe(7);
        let a = mem.alloc_atomic(9);
        assert_eq!(mem.safe_read(Pid(0), s), 7);
        mem.safe_write(Pid(0), s, 8);
        assert_eq!(mem.safe_read(Pid(1), s), 8);
        assert_eq!(mem.atomic_read(Pid(0), a), 9);
        mem.atomic_write(Pid(0), a, 10);
        assert_eq!(mem.atomic_read(Pid(1), a), 10);
    }

    #[test]
    fn sticky_bit_definition_4_1() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Undef);
        assert_eq!(mem.sticky_jam(Pid(0), s, false), JamOutcome::Success);
        // Agreeing jam succeeds; disagreeing jam fails.
        assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Success);
        assert_eq!(mem.sticky_jam(Pid(2), s, true), JamOutcome::Fail);
        assert_eq!(mem.sticky_read(Pid(2), s), Tri::Zero);
        mem.sticky_flush(Pid(0), s);
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Undef);
        assert_eq!(mem.sticky_jam(Pid(2), s, true), JamOutcome::Success);
    }

    #[test]
    fn grouped_bits_share_a_word_but_keep_bit_semantics() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let words_before = mem.sticky_lanes.len();
        let group = mem.alloc_sticky_bits(16);
        assert_eq!(group.len(), 16);
        assert_eq!(mem.sticky_lanes.len(), words_before + 1, "one packed word");
        // Independent per-lane semantics inside the shared word.
        assert!(mem.sticky_jam(Pid(0), group[3], true).is_success());
        assert!(mem.sticky_jam(Pid(1), group[7], false).is_success());
        assert!(!mem.sticky_jam(Pid(2), group[3], false).is_success());
        assert_eq!(mem.sticky_read(Pid(0), group[3]), Tri::One);
        assert_eq!(mem.sticky_read(Pid(0), group[7]), Tri::Zero);
        assert_eq!(mem.sticky_read(Pid(0), group[0]), Tri::Undef);
        // Flushing one lane leaves its siblings alone.
        mem.sticky_flush(Pid(0), group[3]);
        assert_eq!(mem.sticky_read(Pid(0), group[3]), Tri::Undef);
        assert_eq!(mem.sticky_read(Pid(0), group[7]), Tri::Zero);
    }

    #[test]
    fn grouped_alloc_spills_into_multiple_words_past_32() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let words_before = mem.sticky_lanes.len();
        let group = mem.alloc_sticky_bits(40);
        assert_eq!(group.len(), 40);
        assert_eq!(mem.sticky_lanes.len(), words_before + 2);
        for (j, &s) in group.iter().enumerate() {
            assert!(mem.sticky_jam(Pid(0), s, j % 2 == 0).is_success());
        }
        let v = mem.sticky_read_word(Pid(0), &group).unwrap();
        // Even positions 1, odd positions 0: 0b...0101.
        assert_eq!(v & 0b1111, 0b0101);
    }

    #[test]
    fn sticky_read_word_snapshots_a_group_and_sees_undef() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let group = mem.alloc_sticky_bits(8);
        assert_eq!(mem.sticky_read_word(Pid(0), &group), None);
        for (j, &s) in group.iter().enumerate() {
            assert!(mem.sticky_jam(Pid(0), s, 0xA5 >> j & 1 == 1).is_success());
        }
        assert_eq!(mem.sticky_read_word(Pid(1), &group), Some(0xA5));
        // Also works across independently allocated bits.
        let solo = vec![mem.alloc_sticky_bit(), mem.alloc_sticky_bit()];
        mem.sticky_jam(Pid(0), solo[0], true);
        assert_eq!(mem.sticky_read_word(Pid(0), &solo), None);
        mem.sticky_jam(Pid(0), solo[1], true);
        assert_eq!(mem.sticky_read_word(Pid(0), &solo), Some(0b11));
    }

    #[test]
    fn sticky_word_semantics() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_word();
        assert_eq!(mem.sticky_word_read(Pid(0), s), None);
        assert_eq!(mem.sticky_word_jam(Pid(0), s, 42), JamOutcome::Success);
        assert_eq!(mem.sticky_word_jam(Pid(1), s, 42), JamOutcome::Success);
        assert_eq!(mem.sticky_word_jam(Pid(1), s, 43), JamOutcome::Fail);
        assert_eq!(mem.sticky_word_read(Pid(1), s), Some(42));
        mem.sticky_word_flush(Pid(0), s);
        assert_eq!(mem.sticky_word_read(Pid(0), s), None);
    }

    #[test]
    #[should_panic(expected = "sticky word payloads")]
    fn sticky_word_rejects_sentinel() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_word();
        mem.sticky_word_jam(Pid(0), s, STICKY_WORD_UNDEF);
    }

    #[test]
    fn tas_returns_old_value() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let t = mem.alloc_tas();
        assert!(!mem.tas_test_and_set(Pid(0), t));
        assert!(mem.tas_test_and_set(Pid(1), t));
        assert!(mem.tas_read(Pid(1), t));
        mem.tas_reset(Pid(0), t);
        assert!(!mem.tas_read(Pid(0), t));
    }

    #[test]
    fn rmw_applies_function_atomically_and_returns_old() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let a = mem.alloc_atomic(5);
        let old = mem.rmw(Pid(0), a, &|x| x * 2);
        assert_eq!(old, 5);
        assert_eq!(mem.atomic_read(Pid(0), a), 10);
    }

    #[test]
    fn data_cells_hold_payloads() {
        let mut mem: NativeMem<String> = NativeMem::new();
        let d = mem.alloc_data(None);
        assert_eq!(mem.data_read(Pid(0), d), None);
        mem.data_write(Pid(0), d, "state".to_string());
        assert_eq!(mem.data_read(Pid(1), d), Some("state".to_string()));
        mem.data_clear(Pid(0), d);
        assert_eq!(mem.data_read(Pid(0), d), None);
        let d2 = mem.alloc_data(Some("init".to_string()));
        assert_eq!(mem.data_read(Pid(0), d2), Some("init".to_string()));
    }

    #[test]
    fn clock_is_strictly_monotone() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let _ = &mut mem;
        let t0 = mem.op_invoke(Pid(0));
        let t1 = mem.op_return(Pid(0));
        let t2 = mem.op_invoke(Pid(1));
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn census_counts_every_kind() {
        let mut mem: NativeMem<u32> = NativeMem::new();
        mem.alloc_safe(0);
        mem.alloc_safe(0);
        mem.alloc_atomic(0);
        mem.alloc_sticky_bit();
        mem.alloc_sticky_word();
        mem.alloc_tas();
        mem.alloc_data(None);
        let census = mem.allocation_census();
        assert_eq!(census.safe_words, 2);
        assert_eq!(census.atomic_words, 1);
        assert_eq!(census.sticky_bits, 1);
        assert_eq!(census.sticky_words, 1);
        assert_eq!(census.tas_bits, 1);
        assert_eq!(census.data_cells, 1);
        assert_eq!(census.sticky_bit_equivalent(16), 17);
        // Grouped allocation counts every bit.
        let mut mem: NativeMem<u32> = NativeMem::new();
        mem.alloc_sticky_bits(20);
        assert_eq!(mem.allocation_census().sticky_bits, 20);
    }

    #[test]
    fn concurrent_jams_agree_on_one_winner() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_bit();
        let mem = Arc::new(mem);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || {
                    let bit = i % 2 == 0;
                    let out = mem.sticky_jam(Pid(i), s, bit);
                    (bit, out)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let value = mem.sticky_read(Pid(0), s);
        let winner_bit = value.bit().expect("someone jammed");
        for (bit, out) in results {
            if out.is_success() {
                assert_eq!(bit, winner_bit, "successful jam must match final value");
            } else {
                assert_ne!(bit, winner_bit, "failed jam must disagree with final value");
            }
        }
    }

    /// A jam that loses its CAS to a sibling lane retries — and, with a
    /// live registry attached, the retry is counted on the jammer's lane.
    #[cfg(feature = "obs")]
    #[test]
    fn attached_registry_counts_cas_retries() {
        let registry = sbu_obs::Registry::new(4);
        let mut mem: NativeMem<()> = NativeMem::new();
        mem.attach_obs(&registry);
        let group = mem.alloc_sticky_bits(8);
        let mem = Arc::new(mem);
        for round in 0..50 {
            std::thread::scope(|s| {
                for (j, &bit) in group.iter().enumerate().take(4) {
                    let mem = Arc::clone(&mem);
                    s.spawn(move || {
                        mem.sticky_jam(Pid(j), bit, round % 2 == 0);
                    });
                }
            });
            for &bit in group.iter().take(4) {
                mem.sticky_flush(Pid(0), bit);
            }
        }
        // Retries are contention-dependent, so only sanity-check the
        // aggregation: whatever was counted shows up in the snapshot.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("mem.cas_retry"), mem.obs.cas_retry.total());
    }

    /// Concurrent jams to *different* lanes of one packed word must all
    /// stick: the CAS loop retries on sibling-lane interference.
    #[test]
    fn concurrent_jams_to_sibling_lanes_all_stick() {
        for _ in 0..20 {
            let mut mem: NativeMem<()> = NativeMem::new();
            let group = mem.alloc_sticky_bits(8);
            let mem = Arc::new(mem);
            std::thread::scope(|s| {
                for (j, &bit) in group.iter().enumerate() {
                    let mem = Arc::clone(&mem);
                    s.spawn(move || {
                        assert!(mem.sticky_jam(Pid(j), bit, j % 3 == 0).is_success());
                    });
                }
            });
            for (j, &bit) in group.iter().enumerate() {
                assert_eq!(mem.sticky_read(Pid(0), bit), Tri::from_bit(j % 3 == 0));
            }
        }
    }

    #[test]
    fn concurrent_tas_has_exactly_one_winner() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let t = mem.alloc_tas();
        let mem = Arc::new(mem);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || !mem.tas_test_and_set(Pid(i), t))
            })
            .collect();
        let winners = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(winners, 1);
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_sticky_word_jams_have_one_winner() {
        for _ in 0..20 {
            let mut mem: NativeMem<()> = NativeMem::new();
            let w = mem.alloc_sticky_word();
            let mem = Arc::new(mem);
            let outs: Vec<(u64, JamOutcome)> = std::thread::scope(|s| {
                (0..6)
                    .map(|i| {
                        let mem = Arc::clone(&mem);
                        s.spawn(move || (i as u64, mem.sticky_word_jam(Pid(i), w, i as u64 + 1)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let winner = mem.sticky_word_read(Pid(0), w).unwrap();
            for (i, out) in outs {
                assert_eq!(out.is_success(), i + 1 == winner);
            }
        }
    }

    #[test]
    fn concurrent_rmw_is_atomic() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let a = mem.alloc_atomic(0);
        let mem = Arc::new(mem);
        std::thread::scope(|s| {
            for i in 0..4 {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        mem.rmw(Pid(i), a, &|x| x + 1);
                    }
                });
            }
        });
        assert_eq!(mem.atomic_read(Pid(0), a), 40_000);
    }
}
