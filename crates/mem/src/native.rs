//! The native backend: primitives mapped directly onto `std::sync::atomic`.
//!
//! Every register kind is implemented with sequentially consistent atomics,
//! which is *stronger* than its contract requires (safe ⊆ atomic), so every
//! algorithm validated under the simulator runs unchanged — and fast — on
//! real threads. A sticky bit is a single `AtomicU8` compare-exchange: the
//! paper's observation that the primitive "can be easily implemented in
//! hardware" (Section 4) is literally one CAS on every modern ISA.

use crate::{
    AtomicId, DataId, DataMem, JamOutcome, Pid, SafeId, StickyBitId, StickyWordId, TasId, Tri,
    Word, WordMem, STICKY_WORD_UNDEF,
};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

const TRI_UNDEF: u8 = 0;
const TRI_ZERO: u8 = 1;
const TRI_ONE: u8 = 2;

fn tri_encode(bit: bool) -> u8 {
    if bit {
        TRI_ONE
    } else {
        TRI_ZERO
    }
}

fn tri_decode(raw: u8) -> Tri {
    match raw {
        TRI_UNDEF => Tri::Undef,
        TRI_ZERO => Tri::Zero,
        _ => Tri::One,
    }
}

/// Shared memory backed by real atomics.
///
/// `P` is the payload type of data cells; use `()` when only word-level
/// registers are needed.
///
/// ```
/// use sbu_mem::{native::NativeMem, WordMem, JamOutcome, Pid, Tri};
///
/// let mut mem: NativeMem<()> = NativeMem::new();
/// let s = mem.alloc_sticky_bit();
/// assert_eq!(mem.sticky_jam(Pid(0), s, true), JamOutcome::Success);
/// assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Fail);
/// assert_eq!(mem.sticky_read(Pid(1), s), Tri::One);
/// ```
#[derive(Debug, Default)]
pub struct NativeMem<P> {
    safes: Vec<AtomicU64>,
    atomics: Vec<AtomicU64>,
    stickies: Vec<AtomicU8>,
    sticky_words: Vec<AtomicU64>,
    tas_bits: Vec<AtomicBool>,
    data: Vec<RwLock<Option<P>>>,
    clock: AtomicU64,
}

impl<P> NativeMem<P> {
    /// An empty backend.
    pub fn new() -> Self {
        Self {
            safes: Vec::new(),
            atomics: Vec::new(),
            stickies: Vec::new(),
            sticky_words: Vec::new(),
            tas_bits: Vec::new(),
            data: Vec::new(),
            clock: AtomicU64::new(0),
        }
    }

    /// Total number of allocated registers of all kinds (for footprint
    /// accounting in experiments).
    pub fn allocation_census(&self) -> AllocationCensus {
        AllocationCensus {
            safe_words: self.safes.len(),
            atomic_words: self.atomics.len(),
            sticky_bits: self.stickies.len(),
            sticky_words: self.sticky_words.len(),
            tas_bits: self.tas_bits.len(),
            data_cells: self.data.len(),
        }
    }
}

/// Counts of allocated primitives, for Theorem 6.6 space accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocationCensus {
    /// Safe word registers.
    pub safe_words: usize,
    /// Atomic word registers.
    pub atomic_words: usize,
    /// Sticky bits.
    pub sticky_bits: usize,
    /// Primitive sticky words.
    pub sticky_words: usize,
    /// Test-and-set bits.
    pub tas_bits: usize,
    /// Data cells.
    pub data_cells: usize,
}

impl AllocationCensus {
    /// Sticky-bit cost with sticky words charged at `word_bits` bits each,
    /// matching the paper's accounting where every multi-bit sticky field is
    /// ⌈log₂⌉ sticky bits (Figure 2 construction).
    pub fn sticky_bit_equivalent(&self, word_bits: usize) -> usize {
        self.sticky_bits + self.sticky_words * word_bits
    }
}

impl<P: Send + Sync> WordMem for NativeMem<P> {
    fn alloc_safe(&mut self, init: Word) -> SafeId {
        self.safes.push(AtomicU64::new(init));
        SafeId(self.safes.len() - 1)
    }

    fn alloc_atomic(&mut self, init: Word) -> AtomicId {
        self.atomics.push(AtomicU64::new(init));
        AtomicId(self.atomics.len() - 1)
    }

    fn alloc_sticky_bit(&mut self) -> StickyBitId {
        self.stickies.push(AtomicU8::new(TRI_UNDEF));
        StickyBitId(self.stickies.len() - 1)
    }

    fn alloc_sticky_word(&mut self) -> StickyWordId {
        self.sticky_words.push(AtomicU64::new(STICKY_WORD_UNDEF));
        StickyWordId(self.sticky_words.len() - 1)
    }

    fn alloc_tas(&mut self) -> TasId {
        self.tas_bits.push(AtomicBool::new(false));
        TasId(self.tas_bits.len() - 1)
    }

    fn safe_read(&self, _pid: Pid, r: SafeId) -> Word {
        self.safes[r.0].load(Ordering::SeqCst)
    }

    fn safe_write(&self, _pid: Pid, r: SafeId, v: Word) {
        self.safes[r.0].store(v, Ordering::SeqCst);
    }

    fn atomic_read(&self, _pid: Pid, r: AtomicId) -> Word {
        self.atomics[r.0].load(Ordering::SeqCst)
    }

    fn atomic_write(&self, _pid: Pid, r: AtomicId, v: Word) {
        self.atomics[r.0].store(v, Ordering::SeqCst);
    }

    fn rmw(&self, _pid: Pid, r: AtomicId, f: &dyn Fn(Word) -> Word) -> Word {
        self.atomics[r.0]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |x| Some(f(x)))
            .expect("fetch_update closure never returns None")
    }

    fn sticky_jam(&self, _pid: Pid, s: StickyBitId, v: bool) -> JamOutcome {
        let enc = tri_encode(v);
        match self.stickies[s.0].compare_exchange(
            TRI_UNDEF,
            enc,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => JamOutcome::Success,
            Err(current) if current == enc => JamOutcome::Success,
            Err(_) => JamOutcome::Fail,
        }
    }

    fn sticky_read(&self, _pid: Pid, s: StickyBitId) -> Tri {
        tri_decode(self.stickies[s.0].load(Ordering::SeqCst))
    }

    fn sticky_flush(&self, _pid: Pid, s: StickyBitId) {
        self.stickies[s.0].store(TRI_UNDEF, Ordering::SeqCst);
    }

    fn sticky_word_jam(&self, _pid: Pid, s: StickyWordId, v: Word) -> JamOutcome {
        assert!(
            v != STICKY_WORD_UNDEF,
            "sticky word payloads must be < STICKY_WORD_UNDEF"
        );
        match self.sticky_words[s.0].compare_exchange(
            STICKY_WORD_UNDEF,
            v,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => JamOutcome::Success,
            Err(current) if current == v => JamOutcome::Success,
            Err(_) => JamOutcome::Fail,
        }
    }

    fn sticky_word_read(&self, _pid: Pid, s: StickyWordId) -> Option<Word> {
        match self.sticky_words[s.0].load(Ordering::SeqCst) {
            STICKY_WORD_UNDEF => None,
            v => Some(v),
        }
    }

    fn sticky_word_flush(&self, _pid: Pid, s: StickyWordId) {
        self.sticky_words[s.0].store(STICKY_WORD_UNDEF, Ordering::SeqCst);
    }

    fn tas_test_and_set(&self, _pid: Pid, t: TasId) -> bool {
        self.tas_bits[t.0].swap(true, Ordering::SeqCst)
    }

    fn tas_read(&self, _pid: Pid, t: TasId) -> bool {
        self.tas_bits[t.0].load(Ordering::SeqCst)
    }

    fn tas_reset(&self, _pid: Pid, t: TasId) {
        self.tas_bits[t.0].store(false, Ordering::SeqCst);
    }

    fn op_invoke(&self, _pid: Pid) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    fn op_return(&self, _pid: Pid) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }
}

impl<P: Clone + Send + Sync> DataMem<P> for NativeMem<P> {
    fn alloc_data(&mut self, init: Option<P>) -> DataId {
        self.data.push(RwLock::new(init));
        DataId(self.data.len() - 1)
    }

    fn data_read(&self, _pid: Pid, d: DataId) -> Option<P> {
        self.data[d.0].read().clone()
    }

    fn data_write(&self, _pid: Pid, d: DataId, v: P) {
        *self.data[d.0].write() = Some(v);
    }

    fn data_clear(&self, _pid: Pid, d: DataId) {
        *self.data[d.0].write() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn safe_and_atomic_registers_roundtrip() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_safe(7);
        let a = mem.alloc_atomic(9);
        assert_eq!(mem.safe_read(Pid(0), s), 7);
        mem.safe_write(Pid(0), s, 8);
        assert_eq!(mem.safe_read(Pid(1), s), 8);
        assert_eq!(mem.atomic_read(Pid(0), a), 9);
        mem.atomic_write(Pid(0), a, 10);
        assert_eq!(mem.atomic_read(Pid(1), a), 10);
    }

    #[test]
    fn sticky_bit_definition_4_1() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_bit();
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Undef);
        assert_eq!(mem.sticky_jam(Pid(0), s, false), JamOutcome::Success);
        // Agreeing jam succeeds; disagreeing jam fails.
        assert_eq!(mem.sticky_jam(Pid(1), s, false), JamOutcome::Success);
        assert_eq!(mem.sticky_jam(Pid(2), s, true), JamOutcome::Fail);
        assert_eq!(mem.sticky_read(Pid(2), s), Tri::Zero);
        mem.sticky_flush(Pid(0), s);
        assert_eq!(mem.sticky_read(Pid(0), s), Tri::Undef);
        assert_eq!(mem.sticky_jam(Pid(2), s, true), JamOutcome::Success);
    }

    #[test]
    fn sticky_word_semantics() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_word();
        assert_eq!(mem.sticky_word_read(Pid(0), s), None);
        assert_eq!(mem.sticky_word_jam(Pid(0), s, 42), JamOutcome::Success);
        assert_eq!(mem.sticky_word_jam(Pid(1), s, 42), JamOutcome::Success);
        assert_eq!(mem.sticky_word_jam(Pid(1), s, 43), JamOutcome::Fail);
        assert_eq!(mem.sticky_word_read(Pid(1), s), Some(42));
        mem.sticky_word_flush(Pid(0), s);
        assert_eq!(mem.sticky_word_read(Pid(0), s), None);
    }

    #[test]
    #[should_panic(expected = "sticky word payloads")]
    fn sticky_word_rejects_sentinel() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_word();
        mem.sticky_word_jam(Pid(0), s, STICKY_WORD_UNDEF);
    }

    #[test]
    fn tas_returns_old_value() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let t = mem.alloc_tas();
        assert!(!mem.tas_test_and_set(Pid(0), t));
        assert!(mem.tas_test_and_set(Pid(1), t));
        assert!(mem.tas_read(Pid(1), t));
        mem.tas_reset(Pid(0), t);
        assert!(!mem.tas_read(Pid(0), t));
    }

    #[test]
    fn rmw_applies_function_atomically_and_returns_old() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let a = mem.alloc_atomic(5);
        let old = mem.rmw(Pid(0), a, &|x| x * 2);
        assert_eq!(old, 5);
        assert_eq!(mem.atomic_read(Pid(0), a), 10);
    }

    #[test]
    fn data_cells_hold_payloads() {
        let mut mem: NativeMem<String> = NativeMem::new();
        let d = mem.alloc_data(None);
        assert_eq!(mem.data_read(Pid(0), d), None);
        mem.data_write(Pid(0), d, "state".to_string());
        assert_eq!(mem.data_read(Pid(1), d), Some("state".to_string()));
        mem.data_clear(Pid(0), d);
        assert_eq!(mem.data_read(Pid(0), d), None);
        let d2 = mem.alloc_data(Some("init".to_string()));
        assert_eq!(mem.data_read(Pid(0), d2), Some("init".to_string()));
    }

    #[test]
    fn clock_is_strictly_monotone() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let _ = &mut mem;
        let t0 = mem.op_invoke(Pid(0));
        let t1 = mem.op_return(Pid(0));
        let t2 = mem.op_invoke(Pid(1));
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn census_counts_every_kind() {
        let mut mem: NativeMem<u32> = NativeMem::new();
        mem.alloc_safe(0);
        mem.alloc_safe(0);
        mem.alloc_atomic(0);
        mem.alloc_sticky_bit();
        mem.alloc_sticky_word();
        mem.alloc_tas();
        mem.alloc_data(None);
        let census = mem.allocation_census();
        assert_eq!(census.safe_words, 2);
        assert_eq!(census.atomic_words, 1);
        assert_eq!(census.sticky_bits, 1);
        assert_eq!(census.sticky_words, 1);
        assert_eq!(census.tas_bits, 1);
        assert_eq!(census.data_cells, 1);
        assert_eq!(census.sticky_bit_equivalent(16), 17);
    }

    #[test]
    fn concurrent_jams_agree_on_one_winner() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_bit();
        let mem = Arc::new(mem);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || {
                    let bit = i % 2 == 0;
                    let out = mem.sticky_jam(Pid(i), s, bit);
                    (bit, out)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let value = mem.sticky_read(Pid(0), s);
        let winner_bit = value.bit().expect("someone jammed");
        for (bit, out) in results {
            if out.is_success() {
                assert_eq!(bit, winner_bit, "successful jam must match final value");
            } else {
                assert_ne!(bit, winner_bit, "failed jam must disagree with final value");
            }
        }
    }

    #[test]
    fn concurrent_tas_has_exactly_one_winner() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let t = mem.alloc_tas();
        let mem = Arc::new(mem);
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let mem = Arc::clone(&mem);
                std::thread::spawn(move || !mem.tas_test_and_set(Pid(i), t))
            })
            .collect();
        let winners = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&won| won)
            .count();
        assert_eq!(winners, 1);
    }
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_sticky_word_jams_have_one_winner() {
        for _ in 0..20 {
            let mut mem: NativeMem<()> = NativeMem::new();
            let w = mem.alloc_sticky_word();
            let mem = Arc::new(mem);
            let outs: Vec<(u64, JamOutcome)> = std::thread::scope(|s| {
                (0..6)
                    .map(|i| {
                        let mem = Arc::clone(&mem);
                        s.spawn(move || (i as u64, mem.sticky_word_jam(Pid(i), w, i as u64 + 1)))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let winner = mem.sticky_word_read(Pid(0), w).unwrap();
            for (i, out) in outs {
                assert_eq!(out.is_success(), i + 1 == winner);
            }
        }
    }

    #[test]
    fn concurrent_rmw_is_atomic() {
        let mut mem: NativeMem<()> = NativeMem::new();
        let a = mem.alloc_atomic(0);
        let mem = Arc::new(mem);
        std::thread::scope(|s| {
            for i in 0..4 {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        mem.rmw(Pid(i), a, &|x| x + 1);
                    }
                });
            }
        });
        assert_eq!(mem.atomic_read(Pid(0), a), 40_000);
    }
}
