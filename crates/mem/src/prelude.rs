//! One-stop import surface for writing algorithms over the memory traits.
//!
//! Most algorithm code in the workspace needs the same handful of items:
//! the [`WordMem`]/[`DataMem`] traits (to call *provided* methods such as
//! [`WordMem::alloc_sticky_bits`], [`WordMem::sticky_read_word`], and the
//! `op_invoke`/`op_return` clock), the handle types those methods return,
//! the word type and its `⊥` sentinel, and a concrete backend. Instead of
//! spelling out six `use` lines, write:
//!
//! ```
//! use sbu_mem::prelude::*;
//!
//! let mut mem = NativeMem::<()>::new();
//! let bit = mem.alloc_sticky_bit();
//! assert!(mem.sticky_jam(Pid(0), bit, true).is_success());
//! assert_eq!(mem.sticky_read(Pid(0), bit), Tri::One);
//! ```
//!
//! # Naming conventions
//!
//! The prelude is also where the crate's API conventions are documented,
//! so generic code reads uniformly across backends:
//!
//! * **Constructors are `new`/`with_*`** — [`NativeMem::new`],
//!   [`DurableMem::new`], [`DurableMem::with_policy`], and `sbu-sim`'s
//!   `SimMem::new(n_procs)`. `new` takes the required configuration;
//!   `with_*` variants layer optional policy on top.
//! * **Allocation methods are `alloc_*`** and take `&mut self` — they run
//!   in the single-threaded *setup phase* before any processor steps, and
//!   return plain-old-data handles ([`SafeId`], [`AtomicId`],
//!   [`StickyBitId`], [`StickyWordId`], [`TasId`], [`DataId`]).
//! * **Operations take `Pid` first** — every shared-memory step names the
//!   processor executing it, so schedules, persistency bookkeeping, and
//!   observability lanes can be attributed.
//! * **Observability attaches with `attach_obs`** — backends that carry
//!   instruments ([`MemObs`] on [`NativeMem`], [`DurableObs`] on
//!   [`DurableMem`]) register them against an `sbu_obs::Registry` via
//!   `attach_obs(&registry)`; detached backends record nothing.

pub use crate::contention::{Backoff, CachePadded};
pub use crate::durable::{DurableMem, DurableObs, TornPersist};
pub use crate::native::{MemObs, NativeMem};
pub use crate::traits::{DataMem, JamOutcome, WordMem};
pub use crate::{AccessKind, LocId, Word, STICKY_WORD_UNDEF};
pub use crate::{AtomicId, DataId, SafeId, StickyBitId, StickyWordId, TasId};
pub use sbu_spec::specs::Tri;
pub use sbu_spec::Pid;

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_covers_the_generic_surface() {
        use crate::prelude::*;

        fn generic<M: WordMem>(mem: &mut M) -> Tri {
            let bit = mem.alloc_sticky_bit();
            mem.sticky_jam(Pid(0), bit, false);
            mem.sticky_read(Pid(0), bit)
        }

        let mut mem = NativeMem::<()>::new();
        assert_eq!(generic(&mut mem), Tri::Zero);
        let mut durable = DurableMem::with_policy(NativeMem::<()>::new(), TornPersist::Persist);
        assert_eq!(generic(&mut durable), Tri::Zero);
        assert_eq!(STICKY_WORD_UNDEF, Word::MAX);
    }
}
