//! Backend conformance suite.
//!
//! Any [`WordMem`]/[`DataMem`] implementation — the built-in native and
//! simulated backends, adapters like `sbu-sticky`'s `Fig2Mem`, or your own —
//! must satisfy the sequential semantics exercised here. Call
//! [`exercise_word_mem`] (and [`exercise_data_mem`]) from your backend's
//! tests; they panic with a descriptive message on the first deviation.
//!
//! The checks are *sequential*: they pin down the single-threaded meaning of
//! every primitive (which is all a *safe*-register contract promises without
//! concurrency). Concurrent semantics are the simulator's department.

use crate::{DataMem, JamOutcome, Pid, Tri, WordMem};

/// Exercise every word-level primitive of a backend. Panics on deviation.
pub fn exercise_word_mem<M: WordMem>(mem: &mut M) {
    let p0 = Pid(0);
    let p1 = Pid(1);

    // Safe registers: exact when unshared.
    let s = mem.alloc_safe(11);
    assert_eq!(mem.safe_read(p0, s), 11, "safe: initial value");
    mem.safe_write(p0, s, 12);
    assert_eq!(mem.safe_read(p1, s), 12, "safe: last write wins");

    // Atomic registers and RMW.
    let a = mem.alloc_atomic(5);
    assert_eq!(mem.atomic_read(p0, a), 5, "atomic: initial value");
    mem.atomic_write(p1, a, 6);
    assert_eq!(mem.atomic_read(p0, a), 6, "atomic: write visible");
    let old = mem.rmw(p0, a, &|x| x * 2);
    assert_eq!(old, 6, "rmw: returns the old value");
    assert_eq!(mem.atomic_read(p1, a), 12, "rmw: applies the function");

    // Sticky bits: Definition 4.1.
    let b = mem.alloc_sticky_bit();
    assert_eq!(mem.sticky_read(p0, b), Tri::Undef, "sticky: starts ⊥");
    assert_eq!(
        mem.sticky_jam(p0, b, true),
        JamOutcome::Success,
        "sticky: first jam"
    );
    assert_eq!(
        mem.sticky_jam(p1, b, true),
        JamOutcome::Success,
        "sticky: agreeing jam succeeds"
    );
    assert_eq!(
        mem.sticky_jam(p1, b, false),
        JamOutcome::Fail,
        "sticky: disagreeing jam fails"
    );
    assert_eq!(mem.sticky_read(p1, b), Tri::One, "sticky: value stuck");
    // Fence before reinitializing: a flush over another processor's
    // unfenced write is a protocol violation under the persistency model
    // (`DurableMem`); immediate-durability backends treat this as a no-op.
    mem.persist(p0);
    mem.persist(p1);
    mem.sticky_flush(p0, b);
    assert_eq!(mem.sticky_read(p0, b), Tri::Undef, "sticky: flush resets");
    assert_eq!(
        mem.sticky_jam(p1, b, false),
        JamOutcome::Success,
        "sticky: reusable after flush"
    );

    // Sticky words.
    let w = mem.alloc_sticky_word();
    assert_eq!(mem.sticky_word_read(p0, w), None, "sticky word: starts ⊥");
    assert_eq!(
        mem.sticky_word_jam(p0, w, 42),
        JamOutcome::Success,
        "sticky word: first jam"
    );
    assert_eq!(
        mem.sticky_word_jam(p1, w, 42),
        JamOutcome::Success,
        "sticky word: agreeing jam"
    );
    assert_eq!(
        mem.sticky_word_jam(p1, w, 43),
        JamOutcome::Fail,
        "sticky word: disagreeing jam"
    );
    assert_eq!(mem.sticky_word_read(p1, w), Some(42), "sticky word: stuck");
    mem.persist(p0);
    mem.sticky_word_flush(p1, w);
    assert_eq!(mem.sticky_word_read(p0, w), None, "sticky word: flush");

    // Test-and-set.
    let t = mem.alloc_tas();
    assert!(!mem.tas_read(p0, t), "tas: starts clear");
    assert!(!mem.tas_test_and_set(p0, t), "tas: first caller sees false");
    assert!(mem.tas_test_and_set(p1, t), "tas: later callers see true");
    assert!(mem.tas_read(p1, t), "tas: set after t&s");
    mem.persist(p1);
    mem.tas_reset(p0, t);
    assert!(!mem.tas_read(p0, t), "tas: reset clears");

    // Logical clock hooks.
    let t0 = mem.op_invoke(p0);
    let t1 = mem.op_return(p0);
    let t2 = mem.op_invoke(p1);
    assert!(
        t0 < t1 && t1 < t2,
        "op hooks: strictly increasing timestamps"
    );
}

/// Exercise the data-cell primitives of a backend. Panics on deviation.
pub fn exercise_data_mem<P, M>(mem: &mut M, sample: P, other: P)
where
    P: Clone + PartialEq + core::fmt::Debug,
    M: DataMem<P>,
{
    let p0 = Pid(0);
    let d = mem.alloc_data(None);
    assert_eq!(mem.data_read(p0, d), None, "data: starts empty");
    mem.data_write(p0, d, sample.clone());
    assert_eq!(
        mem.data_read(p0, d),
        Some(sample.clone()),
        "data: write/read"
    );
    mem.data_write(p0, d, other.clone());
    assert_eq!(mem.data_read(p0, d), Some(other), "data: overwrite");
    mem.data_clear(p0, d);
    assert_eq!(mem.data_read(p0, d), None, "data: clear");
    let d2 = mem.alloc_data(Some(sample.clone()));
    assert_eq!(mem.data_read(p0, d2), Some(sample), "data: preloaded alloc");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeMem;

    #[test]
    fn native_backend_conforms() {
        let mut mem: NativeMem<String> = NativeMem::new();
        exercise_word_mem(&mut mem);
        exercise_data_mem(&mut mem, "a".to_string(), "b".to_string());
    }
}
