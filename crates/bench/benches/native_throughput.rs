//! Criterion benchmarks for the universal constructions on real threads:
//! per-operation latency solo and under contention, per construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbu_core::{CellPayload, SpinLockUniversal, UnboundedUniversal, Universal, UniversalObject};
use sbu_mem::native::NativeMem;
use sbu_mem::Pid;
use sbu_spec::specs::{CounterOp, CounterSpec, QueueOp, QueueSpec};
use std::sync::Arc;

fn bench_solo_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("solo_counter_inc");
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("bounded", n), &n, |b, &n| {
            let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
            let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
            b.iter(|| obj.apply(&mem, Pid(0), &CounterOp::Inc));
        });
    }
    group.bench_function("unbounded_n4_per_op", |b| {
        // The unbounded construction consumes one arena cell per operation,
        // so criterion's auto-scaled iteration counts would exhaust any
        // fixed arena; measure fixed-size batches on fresh arenas instead.
        let batch = 1_000;
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            let mut remaining = iters;
            while remaining > 0 {
                let chunk = remaining.min(batch) as usize;
                let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
                let obj = UnboundedUniversal::new(&mut mem, 4, chunk, CounterSpec::new());
                let t0 = std::time::Instant::now();
                for _ in 0..chunk {
                    obj.apply(&mem, Pid(0), &CounterOp::Inc);
                }
                total += t0.elapsed();
                remaining -= chunk as u64;
            }
            total
        });
    });
    group.bench_function("spinlock", |b| {
        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let obj = SpinLockUniversal::new(&mut mem, CounterSpec::new());
        b.iter(|| obj.apply::<CounterSpec, _>(&mem, Pid(0), &CounterOp::Inc));
    });
    group.finish();
}

fn run_batch<U: UniversalObject<QueueSpec> + Clone + 'static>(
    threads: usize,
    per: usize,
    obj: &U,
    mem: &Arc<NativeMem<CellPayload<QueueSpec>>>,
) {
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(mem);
            let obj = obj.clone();
            s.spawn(move || {
                for k in 0..per {
                    let op = if k % 2 == 0 {
                        QueueOp::Enqueue(k as u64)
                    } else {
                        QueueOp::Dequeue
                    };
                    obj.apply(&*mem, Pid(i), &op);
                }
            });
        }
    });
}

fn bench_contended_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_queue_400ops");
    group.sample_size(10);
    let threads = 4;
    let per = 100;

    group.bench_function("bounded", |b| {
        b.iter_with_setup(
            || {
                let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
                let obj = Universal::builder(threads).build(&mut mem, QueueSpec::new());
                (obj, Arc::new(mem))
            },
            |(obj, mem)| run_batch(threads, per, &obj, &mem),
        );
    });
    group.bench_function("unbounded", |b| {
        b.iter_with_setup(
            || {
                let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
                let obj = UnboundedUniversal::new(&mut mem, threads, per + 4, QueueSpec::new());
                (obj, Arc::new(mem))
            },
            |(obj, mem)| run_batch(threads, per, &obj, &mem),
        );
    });
    group.bench_function("spinlock", |b| {
        b.iter_with_setup(
            || {
                let mut mem: NativeMem<CellPayload<QueueSpec>> = NativeMem::new();
                let obj = SpinLockUniversal::new(&mut mem, QueueSpec::new());
                (obj, Arc::new(mem))
            },
            |(obj, mem)| run_batch(threads, per, &obj, &mem),
        );
    });
    group.finish();
}

criterion_group!(benches, bench_solo_latency, bench_contended_batch);
criterion_main!(benches);
