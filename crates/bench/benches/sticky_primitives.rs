//! Criterion microbenchmarks for the sticky primitives on the native
//! backend: the raw cost of jams, sticky-byte jams (Figure 2), leader
//! election, and consensus objects.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbu_mem::native::NativeMem;
use sbu_mem::{Pid, WordMem};
use sbu_sticky::consensus::{Consensus, InitializableConsensus, RmwConsensus, StickyWordConsensus};
use sbu_sticky::{JamWord, LeaderElection};

fn bench_sticky_bit(c: &mut Criterion) {
    let mut group = c.benchmark_group("sticky_bit");
    group.bench_function("jam_then_flush", |b| {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_bit();
        b.iter(|| {
            mem.sticky_jam(Pid(0), s, true);
            mem.sticky_flush(Pid(0), s);
        });
    });
    group.bench_function("read", |b| {
        let mut mem: NativeMem<()> = NativeMem::new();
        let s = mem.alloc_sticky_bit();
        mem.sticky_jam(Pid(0), s, true);
        b.iter(|| mem.sticky_read(Pid(0), s));
    });
    group.finish();
}

fn bench_jam_word(c: &mut Criterion) {
    let mut group = c.benchmark_group("jam_word_fig2");
    for width in [8u32, 16, 32] {
        group.bench_with_input(
            BenchmarkId::new("solo_jam_flush", width),
            &width,
            |b, &width| {
                let mut mem: NativeMem<()> = NativeMem::new();
                let jw = JamWord::new(&mut mem, 4, width);
                b.iter(|| {
                    jw.jam(&mem, Pid(0), 0x5A);
                    jw.flush(&mem, Pid(0));
                });
            },
        );
    }
    group.finish();
}

fn bench_election(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_election");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("solo_elect_flush", n), &n, |b, &n| {
            let mut mem: NativeMem<()> = NativeMem::new();
            let le = LeaderElection::new(&mut mem, n);
            b.iter(|| {
                le.elect(&mem, Pid(0));
                le.flush(&mem, Pid(0));
            });
        });
    }
    group.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_objects");
    group.bench_function("sticky_word_propose", |b| {
        let mut mem: NativeMem<()> = NativeMem::new();
        let cons = StickyWordConsensus::new(&mut mem);
        b.iter(|| {
            cons.propose(&mem, Pid(0), 7);
            cons.reset(&mem, Pid(0));
        });
    });
    group.bench_function("rmw3_propose", |b| {
        let mut mem: NativeMem<()> = NativeMem::new();
        let cons = RmwConsensus::new(&mut mem);
        b.iter(|| {
            cons.propose(&mem, Pid(0), 1);
            cons.reset(&mem, Pid(0));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sticky_bit,
    bench_jam_word,
    bench_election,
    bench_consensus
);
criterion_main!(benches);
