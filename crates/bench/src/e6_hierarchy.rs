//! E6 — the RMW hierarchy table (Sections 1 & 7), produced by exhaustive
//! schedule exploration.
//!
//! | level | object | consensus claim |
//! |-------|--------|-----------------|
//! | 0 | safe/atomic registers | cannot do 2-consensus \[4, 5\] |
//! | 1 | 1-bit RMW (TAS) | 2-consensus yes, 3-consensus no \[7, 10\] |
//! | 3 | 3-valued RMW ≡ sticky bit | n-consensus — universal (this paper) |
//!
//! For each (object, n) we run the natural wait-free protocol over every
//! schedule: either all schedules agree, or the explorer exhibits a
//! concrete counterexample schedule — the executable echo of the
//! impossibility proofs.

use crate::render_table;
use sbu_rmw::impossibility::{
    find_consensus_counterexample, NaiveRegisterConsensus, TasThreeConsensus,
};
use sbu_rmw::TasTwoConsensus;
use sbu_sticky::consensus::{RmwConsensus, StickyBinaryConsensus};

/// Run the experiment and return the report.
pub fn run() -> String {
    let mut rows = Vec::new();
    let mut record = |name: &str, n: usize, result: Result<usize, Vec<usize>>, expect_ok: bool| {
        let (verdict, detail) = match result {
            Ok(schedules) => (
                "agrees".to_string(),
                format!("{schedules} schedules exhausted"),
            ),
            Err(script) => (
                "COUNTEREXAMPLE".to_string(),
                format!("disagreement after {} decisions", script.len()),
            ),
        };
        let matches_theory = (verdict == "agrees") == expect_ok;
        rows.push(vec![
            name.to_string(),
            n.to_string(),
            verdict,
            detail,
            if matches_theory {
                "✓".into()
            } else {
                "✗".into()
            },
        ]);
    };

    record(
        "registers (level 0)",
        2,
        find_consensus_counterexample(2, 200_000, NaiveRegisterConsensus::new),
        false,
    );
    record(
        "test-and-set (level 1)",
        2,
        find_consensus_counterexample(2, 500_000, TasTwoConsensus::new),
        true,
    );
    record(
        "test-and-set (level 1)",
        3,
        find_consensus_counterexample(3, 500_000, TasThreeConsensus::new),
        false,
    );
    record(
        "sticky bit (level 3)",
        2,
        find_consensus_counterexample(2, 2_000_000, StickyBinaryConsensus::new),
        true,
    );
    record(
        "sticky bit (level 3)",
        3,
        find_consensus_counterexample(3, 2_000_000, StickyBinaryConsensus::new),
        true,
    );
    record(
        "3-valued RMW (level 3)",
        3,
        find_consensus_counterexample(3, 2_000_000, RmwConsensus::new),
        true,
    );

    render_table(
        "E6  the RMW hierarchy, explored exhaustively (matches theory when \
         last column is ✓)",
        &["base object", "n", "verdict", "detail", "theory"],
        &rows,
    )
}
