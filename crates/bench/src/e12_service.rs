//! E12 — sharded object-space throughput (the `sbu-service` runtime).
//!
//! E8 established the ceiling of *one* universal object: `bounded_fast`
//! peaks near 2T and falls through 8T, because every processor contends on
//! one cell pool. E12 measures the way out: many objects behind the
//! service router, where each key is its own tiny `n = 1` construction and
//! shards scale with workers. The sweep crosses client count × shard count
//! × key skew (uniform vs Zipf-0.99 hot keys) in the closed loop, and
//! records the e8-style single-object `bounded_fast` number at the top
//! client count as the baseline the acceptance check compares against.
//!
//! Artifacts: `BENCH_e12.json` (schema in EXPERIMENTS.md) and, with the
//! `obs` feature, `OBS_e12.json` carrying the merged `service.*`
//! instruments. `run_smoke` is the CI arm: 1 vs 4 shards at 4 clients,
//! asserting the sharded run at least matches the single shard.

use crate::json::Json;
use crate::{render_table, write_obs_artifact};
use rand::rngs::SmallRng;
use sbu_core::{CellPayload, Universal};
use sbu_mem::native::NativeMem;
use sbu_mem::Pid;
use sbu_obs::Snapshot;
use sbu_service::loadgen::{self, LoadgenConfig, LoopMode, Skew};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::sync::Arc;
use std::time::Instant;

/// Requests each client issues per cell.
pub const OPS_PER_CLIENT: usize = 2_000;

/// Client counts swept.
pub const CLIENTS: [usize; 4] = [1, 2, 4, 8];

/// Shard counts swept (workers track shards, capped at the client count).
pub const SHARDS: [usize; 3] = [1, 4, 8];

/// The Zipf exponent for the skewed arm (the conventional hot-key value).
pub const ZIPF_THETA: f64 = 0.99;

/// One cell of the sweep.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Shards (power of two).
    pub shards: usize,
    /// Worker threads serving the shards.
    pub workers: usize,
    /// Key-distribution label (`"uniform"` or `"zipf-0.99"`).
    pub skew: &'static str,
    /// Aggregate completed requests per second.
    pub ops_per_sec: f64,
    /// Hottest shard's ops over the perfectly balanced share.
    pub imbalance: f64,
}

/// The workload both E12 and the smoke arm drive: a 75/25 inc/read counter
/// mix over 1024 keys.
fn counter_mix(rng: &mut SmallRng) -> CounterOp {
    use rand::Rng;
    if rng.gen_bool(0.25) {
        CounterOp::Read
    } else {
        CounterOp::Inc
    }
}

fn cell_config(clients: usize, shards: usize, skew: Skew, timing: bool) -> LoadgenConfig {
    LoadgenConfig {
        clients,
        shards,
        workers: shards.min(clients.max(1)),
        ops_per_client: OPS_PER_CLIENT,
        keys: 1024,
        skew,
        mode: LoopMode::Closed,
        seed: 0xE12,
        timing,
    }
}

fn skews() -> [(Skew, &'static str); 2] {
    [
        (Skew::Uniform, "uniform"),
        (Skew::Zipf(ZIPF_THETA), "zipf-0.99"),
    ]
}

/// Run the full sweep; `metrics` accumulates every cell's `service.*`
/// instruments (pass a default Snapshot and write it out after).
pub fn measure(metrics: &mut Snapshot) -> Vec<E12Row> {
    let mut rows = Vec::new();
    for &clients in &CLIENTS {
        for &shards in &SHARDS {
            for (skew, label) in skews() {
                let config = cell_config(clients, shards, skew, true);
                let report = loadgen::run(&config, CounterSpec::new(), counter_mix);
                metrics.merge(&report.metrics);
                rows.push(E12Row {
                    clients,
                    shards,
                    workers: config.workers,
                    skew: label,
                    ops_per_sec: report.ops_per_sec,
                    imbalance: report.imbalance,
                });
            }
        }
    }
    rows
}

/// The e8-style reference: one `n = threads` universal counter hammered by
/// `threads` OS threads — the number the sharded rows are measured
/// against ("aggregate throughput ≥ 4× the single-object ceiling").
pub fn single_universal_baseline(threads: usize) -> f64 {
    let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
    let obj = Universal::builder(threads).build(&mut mem, CounterSpec::new());
    let mem = Arc::new(mem);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let (mem, obj) = (Arc::clone(&mem), obj.clone());
            s.spawn(move || {
                for _ in 0..OPS_PER_CLIENT {
                    obj.apply(&*mem, Pid(i), &CounterOp::Inc);
                }
            });
        }
    });
    (threads * OPS_PER_CLIENT) as f64 / t0.elapsed().as_secs_f64()
}

/// The `BENCH_e12.json` document (schema in EXPERIMENTS.md).
pub fn to_json(rows: &[E12Row], baseline_single_universal_8t: f64) -> Json {
    Json::obj(vec![
        ("experiment", Json::Str("e12".into())),
        ("object", Json::Str("counter".into())),
        ("unit", Json::Str("ops_per_sec".into())),
        ("ops_per_client", Json::Num(OPS_PER_CLIENT as f64)),
        ("mode", Json::Str("closed".into())),
        (
            "baseline_single_universal_8t",
            Json::Num(baseline_single_universal_8t),
        ),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("clients", Json::Num(r.clients as f64)),
                            ("shards", Json::Num(r.shards as f64)),
                            ("workers", Json::Num(r.workers as f64)),
                            ("skew", Json::Str(r.skew.into())),
                            ("ops_per_sec", Json::Num(r.ops_per_sec)),
                            ("imbalance", Json::Num(r.imbalance)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render(rows: &[E12Row], baseline: f64) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                r.shards.to_string(),
                r.workers.to_string(),
                r.skew.to_string(),
                format!("{:.0}", r.ops_per_sec),
                format!("{:.2}", r.imbalance),
                format!("{:.2}×", r.ops_per_sec / baseline),
            ]
        })
        .collect();
    let mut out = render_table(
        "E12  sharded object-space throughput (closed loop, 75/25 inc/read over 1024 keys)",
        &[
            "clients",
            "shards",
            "workers",
            "skew",
            "ops/sec",
            "imbalance",
            "vs 1-object@8T",
        ],
        &table_rows,
    );
    out.push_str(&format!(
        "single-object bounded_fast reference @8T: {baseline:.0} ops/sec\n"
    ));
    out
}

/// Run the full experiment, write `BENCH_e12.json` (+ `OBS_e12.json` under
/// `obs`), and verify the headline acceptance claim: at 8 clients, some
/// ≥4-shard cell reaches 4× the single-object ceiling. `Err` carries the
/// report when the claim fails.
pub fn run_checked() -> Result<String, String> {
    let mut metrics = Snapshot::default();
    let rows = measure(&mut metrics);
    let baseline = single_universal_baseline(8);

    let json = to_json(&rows, baseline).render();
    let mut report = render(&rows, baseline);
    report.push_str(&metrics.render_table("E12  service instruments (all cells)"));
    match std::fs::write("BENCH_e12.json", &json) {
        Ok(()) => report.push_str("wrote BENCH_e12.json\n"),
        Err(e) => report.push_str(&format!("could not write BENCH_e12.json: {e}\n")),
    }
    report.push_str(&write_obs_artifact("e12", &metrics));

    let best_sharded = rows
        .iter()
        .filter(|r| r.clients == 8 && r.shards >= 4)
        .map(|r| r.ops_per_sec)
        .fold(0.0f64, f64::max);
    report.push_str(&format!(
        "acceptance: best ≥4-shard cell @8 clients {best_sharded:.0} ops/sec = {:.2}× single-object ceiling (need ≥ 4×)\n",
        best_sharded / baseline
    ));
    if best_sharded >= 4.0 * baseline {
        Ok(report)
    } else {
        Err(report)
    }
}

/// Run the experiment without failing the process on the acceptance ratio
/// (interactive `exp e12`).
pub fn run() -> String {
    match run_checked() {
        Ok(report) => report,
        Err(report) => report + "WARNING: acceptance ratio not met on this machine\n",
    }
}

/// The CI smoke: 1 shard vs 4 shards at 4 clients. Asserts the sharded
/// cell is at least as fast as the single shard (generous on noisy CI —
/// the full sweep's 4× claim is checked on dedicated hardware), and that
/// `OBS_e12.json` carries a non-zero `service.route` when obs is compiled
/// in. `Err` carries the report on failure.
pub fn run_smoke() -> Result<String, String> {
    let mut metrics = Snapshot::default();
    let mut tps = [0.0f64; 2];
    for (slot, shards) in [(0, 1usize), (1, 4)] {
        let config = cell_config(4, shards, Skew::Uniform, true);
        let report = loadgen::run(&config, CounterSpec::new(), counter_mix);
        metrics.merge(&report.metrics);
        tps[slot] = report.ops_per_sec;
    }
    let mut report = format!(
        "E12 smoke @4 clients: 1 shard {:.0} ops/sec, 4 shards {:.0} ops/sec ({:.2}×)\n",
        tps[0],
        tps[1],
        tps[1] / tps[0]
    );
    report.push_str(&write_obs_artifact("e12", &metrics));

    if cfg!(feature = "obs") && metrics.counter("service.route") == 0 {
        return Err(report + "FAIL: service.route recorded nothing\n");
    }
    // Scheduling noise guard: retry the comparison up to twice before
    // declaring the sharded configuration slower.
    for attempt in 0..2 {
        if tps[1] >= tps[0] {
            break;
        }
        let config = cell_config(4, 4, Skew::Uniform, true);
        let fresh = loadgen::run(&config, CounterSpec::new(), counter_mix);
        report.push_str(&format!(
            "retry {}: 4 shards {:.0} ops/sec\n",
            attempt + 1,
            fresh.ops_per_sec
        ));
        tps[1] = tps[1].max(fresh.ops_per_sec);
    }
    if tps[1] >= tps[0] {
        Ok(report)
    } else {
        Err(report + "FAIL: 4-shard throughput below single shard at 4 clients\n")
    }
}

/// A fully deterministic run: single client, single worker, timing off.
/// Returns the `(BENCH_e12, OBS_e12)` document texts without writing any
/// file — the determinism test pins that these are byte-identical across
/// invocations for the same seed.
pub fn deterministic_docs(seed: u64) -> (String, String) {
    let mut metrics = Snapshot::default();
    let mut rows = Vec::new();
    for &shards in &SHARDS {
        for (skew, label) in skews() {
            let config = LoadgenConfig {
                seed,
                timing: false,
                ..cell_config(1, shards, skew, false)
            };
            let report = loadgen::run(&config, CounterSpec::new(), counter_mix);
            metrics.merge(&report.metrics);
            rows.push(E12Row {
                clients: 1,
                shards,
                workers: config.workers,
                skew: label,
                ops_per_sec: report.ops_per_sec,
                imbalance: report.imbalance,
            });
        }
    }
    let bench = to_json(&rows, 0.0).render();
    let obs = Json::obj(vec![
        ("experiment", Json::Str("e12".into())),
        ("metrics", metrics.to_json()),
    ])
    .render();
    (bench, obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_docs_are_byte_identical_for_a_seed() {
        let (bench_a, obs_a) = deterministic_docs(7);
        let (bench_b, obs_b) = deterministic_docs(7);
        assert_eq!(bench_a, bench_b);
        assert_eq!(obs_a, obs_b);
        // Timing fields are zeroed, so this holds across machines too.
        assert!(bench_a.contains("\"ops_per_sec\": 0"));
        // A different seed routes a different key stream.
        let (bench_c, _) = deterministic_docs(8);
        assert_ne!(bench_a, bench_c);
    }

    #[test]
    fn json_schema_carries_every_axis() {
        let rows = vec![E12Row {
            clients: 8,
            shards: 4,
            workers: 4,
            skew: "uniform",
            ops_per_sec: 123.0,
            imbalance: 1.5,
        }];
        let doc = to_json(&rows, 456.0).render();
        for needle in [
            "\"experiment\": \"e12\"",
            "\"clients\": 8",
            "\"shards\": 4",
            "\"skew\": \"uniform\"",
            "\"baseline_single_universal_8t\": 456",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }
}
