//! # sbu-bench — the experiment harness
//!
//! One module per experiment of `EXPERIMENTS.md` (E1–E11), each regenerating
//! the corresponding table from the paper's claims. Run them via the `exp`
//! binary:
//!
//! ```sh
//! cargo run --release -p sbu-bench --bin exp -- all
//! cargo run --release -p sbu-bench --bin exp -- e3
//! ```
//!
//! The paper is a theory paper: its "evaluation" is Theorem 6.6, the §6.4
//! complexity paragraph, the Figure 2/§4 observations and the §1/§7
//! hierarchy claims. Each experiment measures the implemented system and
//! reports the *shape* predicted by the paper (who wins, what grows how
//! fast, where the separations fall).

pub mod e10_stress;
pub mod e11_recovery;
pub mod e12_service;
pub mod e1_sticky_byte;
pub mod e2_election;
pub mod e3_space;
pub mod e4_time;
pub mod e5_crash;
pub mod e6_hierarchy;
pub mod e7_randomized;
pub mod e8_throughput;
pub mod e9_explore;

// The JSON reader/writer moved to `sbu-obs` (it now also serves the
// `OBS_*.json` artifacts); re-exported here so `sbu_bench::json::Json`
// keeps working.
pub use sbu_obs::json;

/// Write the `OBS_<exp>.json` observability artifact (schema in
/// EXPERIMENTS.md) next to the experiment's `BENCH_*.json`, returning a
/// report line. An empty snapshot (the `obs` feature is off, or nothing
/// registered) writes nothing and returns the empty string, so callers can
/// append unconditionally.
pub fn write_obs_artifact(exp: &str, snapshot: &sbu_obs::Snapshot) -> String {
    if snapshot.is_empty() {
        return String::new();
    }
    let doc = sbu_obs::Json::obj(vec![
        ("experiment", sbu_obs::Json::Str(exp.into())),
        ("metrics", snapshot.to_json()),
    ]);
    let path = format!("OBS_{exp}.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => format!("wrote {path}\n"),
        Err(e) => format!("could not write {path}: {e}\n"),
    }
}

/// Render a table: header row plus data rows, columns padded.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "T",
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("T\n"));
        assert!(t.contains("333"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
    }
}
