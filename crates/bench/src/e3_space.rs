//! E3 — Theorem 6.6's space bound: O(n²) cells, O(n² log n) sticky bits.
//!
//! We build the bounded universal construction for growing n, run a fixed
//! per-processor workload, and report (a) the allocated pool and its ratio
//! to n², (b) the sticky-bit census with sticky words charged at
//! ⌈log₂ pool⌉ bits each (the Figure 2 accounting), and its ratio to
//! n² log n, and (c) live (claimed) cells after the run — the reuse working
//! set. The unbounded baseline's linear growth is shown for contrast.

use crate::render_table;
use sbu_core::{CellPayload, UnboundedUniversal, Universal};
use sbu_mem::Pid;
use sbu_sim::{run_uniform, RoundRobin, RunOptions, SimMem};
use sbu_spec::specs::{CounterOp, CounterSpec};

/// Run the experiment and return the report.
pub fn run() -> String {
    let ops_each = 10;
    let mut rows = Vec::new();
    for &n in &[1usize, 2, 3, 4, 6, 8] {
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions {
                max_steps: 500_000_000,
            },
            n,
            move |mem, pid| {
                for _ in 0..ops_each {
                    obj2.apply(mem, pid, &CounterOp::Inc);
                }
            },
        );
        out.assert_clean();
        let (_, _, sticky_bits, sticky_words, _, _) = mem.census();
        let word_bits = (obj.pool_size() as f64).log2().ceil() as usize;
        let sticky_equiv = sticky_bits + sticky_words * word_bits;
        let n2 = (n * n) as f64;
        let n2logn = n2 * (n.max(2) as f64).log2();
        let live = obj.cells_in_use(&mem, Pid(0));
        rows.push(vec![
            n.to_string(),
            obj.pool_size().to_string(),
            format!("{:.1}", obj.pool_size() as f64 / n2),
            live.to_string(),
            sticky_equiv.to_string(),
            format!("{:.0}", sticky_equiv as f64 / n2logn),
        ]);
    }
    let bounded = render_table(
        "E3a  bounded construction space (Thm 6.6: cells = Θ(n²), sticky \
         bits = Θ(n² log n))",
        &[
            "n",
            "pool cells",
            "cells/n²",
            "live cells after run",
            "sticky-bit equiv",
            "equiv/(n²·log n)",
        ],
        &rows,
    );

    // Unbounded baseline: cells consumed grow linearly with total ops.
    let mut rows = Vec::new();
    for &total_ops in &[20usize, 40, 80, 160] {
        let n = 2;
        let per = total_ops / n;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let obj = UnboundedUniversal::new(&mut mem, n, per, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions {
                max_steps: 500_000_000,
            },
            n,
            move |mem, pid| {
                for _ in 0..per {
                    obj2.apply(mem, pid, &CounterOp::Inc);
                }
            },
        );
        out.assert_clean();
        rows.push(vec![
            total_ops.to_string(),
            obj.cells_consumed(&mem, Pid(0)).to_string(),
        ]);
    }
    let unbounded = render_table(
        "E3b  unbounded (Herlihy-style) baseline: memory grows with ops \
         (the paper's critique)",
        &["total ops", "cells consumed"],
        &rows,
    );

    format!("{bounded}\n{unbounded}")
}
