//! E7 — randomized consensus from registers only (the paper's corollary
//! via references \[1\]–\[4\]): agreement always, expected rounds small and
//! polynomially bounded in n.

use crate::render_table;
use sbu_mem::Word;
use sbu_sim::{run_uniform, RandomAdversary, RunOptions, SimMem};
use sbu_sticky::RandomizedConsensus;
use std::sync::Arc;

/// Run the experiment and return the report.
pub fn run() -> String {
    let mut rows = Vec::new();
    for &n in &[2usize, 3, 4, 6, 8] {
        let runs = 120;
        let mut agree = 0usize;
        let mut total_rounds = 0usize;
        let mut max_rounds = 0usize;
        let mut total_steps = 0u64;
        for seed in 0..runs {
            let mut mem: SimMem<()> = SimMem::new(n);
            let rc = RandomizedConsensus::new(&mut mem, n, seed as u64);
            let rc2 = rc.clone();
            let rounds: Arc<parking_lot::Mutex<Vec<usize>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let rounds2 = Arc::clone(&rounds);
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed as u64 ^ 0xD1CE)),
                RunOptions::default(),
                n,
                move |mem, pid| {
                    let (d, r) = rc2.propose_counting(mem, pid, (pid.0 % 2) as Word);
                    rounds2.lock().push(r);
                    d
                },
            );
            assert!(!out.aborted);
            let ds: Vec<Word> = out.results().into_iter().copied().collect();
            if ds.iter().all(|&d| d == ds[0]) {
                agree += 1;
            }
            for r in rounds.lock().iter() {
                total_rounds += r;
                max_rounds = max_rounds.max(*r);
            }
            total_steps += out.steps;
        }
        rows.push(vec![
            n.to_string(),
            runs.to_string(),
            format!("{:.1}%", 100.0 * agree as f64 / runs as f64),
            format!("{:.2}", total_rounds as f64 / (runs * n) as f64),
            max_rounds.to_string(),
            format!("{:.0}", total_steps as f64 / runs as f64),
        ]);
    }
    render_table(
        "E7  randomized consensus from atomic registers (adopt–commit + \
         voting coin): agreement always, rounds O(1) expected",
        &[
            "n",
            "runs",
            "agreement",
            "mean rounds",
            "max rounds",
            "mean steps/run",
        ],
        &rows,
    )
}
