//! E8 — native throughput of the constructions on real threads.
//!
//! Not a claim the paper makes (1989 hardware!), but the comparison every
//! modern reader wants: operations per second for the bounded universal
//! construction (with and without the locality fast paths) vs the unbounded
//! baseline vs a spin lock vs a raw atomic fetch-and-add reference, as
//! thread count grows. The universal constructions pay for wait-freedom
//! with scans; the point is progress guarantees, not raw speed.
//!
//! Besides the rendered table, `run` writes `BENCH_e8.json` (schema in
//! EXPERIMENTS.md) so the perf trajectory is trackable across changes, and
//! `run_checked` compares a fresh run against a checked-in baseline —
//! that's the CI perf smoke.

use crate::json::Json;
use crate::{render_table, write_obs_artifact};
use sbu_core::{
    bounded::UniversalConfig, CellPayload, SpinLockUniversal, UnboundedUniversal, Universal,
    UniversalObject,
};
use sbu_mem::native::NativeMem;
use sbu_mem::{Pid, WordMem};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::sync::Arc;
use std::time::Instant;

/// Operations per thread for every arm.
pub const OPS_PER_THREAD: usize = 2_000;

/// Thread counts swept.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Fail the baseline check when `bounded_fast` drops below this fraction
/// of the recorded baseline (i.e. a >30% regression).
pub const REGRESSION_FLOOR: f64 = 0.70;

/// One thread-count's measurements, ops/sec.
#[derive(Debug, Clone, Copy)]
pub struct E8Row {
    /// Concurrent processors.
    pub threads: usize,
    /// Bounded universal construction, fast paths on (the default config).
    pub bounded_fast: f64,
    /// Bounded universal construction, the paper's full scans.
    pub bounded_paper: f64,
    /// Unbounded (Figure 1 style) universal construction.
    pub unbounded: f64,
    /// Spin-lock-protected sequential object.
    pub spin_lock: f64,
    /// Raw hardware fetch-and-add (the op the constructions simulate).
    pub raw_fetch_add: f64,
}

impl E8Row {
    /// Keep the better (higher-throughput) sample per arm.
    fn merge_best(&mut self, other: &E8Row) {
        self.bounded_fast = self.bounded_fast.max(other.bounded_fast);
        self.bounded_paper = self.bounded_paper.max(other.bounded_paper);
        self.unbounded = self.unbounded.max(other.unbounded);
        self.spin_lock = self.spin_lock.max(other.spin_lock);
        self.raw_fetch_add = self.raw_fetch_add.max(other.raw_fetch_add);
    }
}

fn throughput<U>(
    threads: usize,
    ops_per_thread: usize,
    obj: U,
    mem: NativeMem<CellPayload<CounterSpec>>,
) -> f64
where
    U: UniversalObject<CounterSpec> + Clone + 'static,
{
    let mem = Arc::new(mem);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let obj = obj.clone();
            s.spawn(move || {
                for _ in 0..ops_per_thread {
                    obj.apply(&*mem, Pid(i), &CounterOp::Inc);
                }
            });
        }
    });
    (threads * ops_per_thread) as f64 / t0.elapsed().as_secs_f64()
}

fn bounded_throughput(
    threads: usize,
    ops: usize,
    config: UniversalConfig,
    registry: &sbu_obs::Registry,
) -> f64 {
    let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
    mem.attach_obs(registry);
    let bounded = Universal::builder(threads)
        .config(config)
        .obs(registry)
        .build(&mut mem, CounterSpec::new());
    throughput(threads, ops, bounded, mem)
}

/// Measure every arm at every thread count.
pub fn measure() -> Vec<E8Row> {
    measure_with(&sbu_obs::Registry::new(0))
}

/// Like [`measure`], but the bounded arms attach their instruments to
/// `registry` (frontier hit/miss/fallback, combining batch sizes, CAS
/// retries) — the source of the `OBS_e8.json` artifact. Size the registry
/// for the largest entry of [`THREADS`].
pub fn measure_with(registry: &sbu_obs::Registry) -> Vec<E8Row> {
    let mut rows = Vec::new();
    for &threads in &THREADS {
        let ops = OPS_PER_THREAD;

        let bounded_fast =
            bounded_throughput(threads, ops, UniversalConfig::for_procs(threads), registry);
        let bounded_paper = bounded_throughput(
            threads,
            ops,
            UniversalConfig::for_procs(threads).paper_scans(),
            registry,
        );

        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let unbounded = UnboundedUniversal::new(&mut mem, threads, ops + 8, CounterSpec::new());
        let unbounded_tp = throughput(threads, ops, unbounded, mem);

        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let lock = SpinLockUniversal::new(&mut mem, CounterSpec::new());
        let lock_tp = throughput(threads, ops, lock, mem);

        // Raw fetch-and-add reference (not linearizable *as a universal
        // object* — it IS the hardware op the constructions simulate).
        let mut mem: NativeMem<()> = NativeMem::new();
        let reg = mem.alloc_atomic(0);
        let mem = Arc::new(mem);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for i in 0..threads {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    for _ in 0..ops {
                        mem.rmw(Pid(i), reg, &|x| x + 1);
                    }
                });
            }
        });
        let raw_tp = (threads * ops) as f64 / t0.elapsed().as_secs_f64();

        rows.push(E8Row {
            threads,
            bounded_fast,
            bounded_paper,
            unbounded: unbounded_tp,
            spin_lock: lock_tp,
            raw_fetch_add: raw_tp,
        });
    }
    rows
}

/// The `BENCH_e8.json` document for a set of rows (schema: EXPERIMENTS.md).
pub fn to_json(rows: &[E8Row]) -> Json {
    Json::obj(vec![
        ("experiment", Json::Str("e8".into())),
        ("object", Json::Str("counter".into())),
        ("unit", Json::Str("ops_per_sec".into())),
        ("ops_per_thread", Json::Num(OPS_PER_THREAD as f64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("threads", Json::Num(r.threads as f64)),
                            ("bounded_fast", Json::Num(r.bounded_fast)),
                            ("bounded_paper", Json::Num(r.bounded_paper)),
                            ("unbounded", Json::Num(r.unbounded)),
                            ("spin_lock", Json::Num(r.spin_lock)),
                            ("raw_fetch_add", Json::Num(r.raw_fetch_add)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn render(rows: &[E8Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.0}", r.bounded_fast),
                format!("{:.0}", r.bounded_paper),
                format!("{:.2}×", r.bounded_fast / r.bounded_paper),
                format!("{:.0}", r.unbounded),
                format!("{:.0}", r.spin_lock),
                format!("{:.0}", r.raw_fetch_add),
            ]
        })
        .collect();
    render_table(
        "E8  native throughput, ops/sec (counter; release build recommended)",
        &[
            "threads",
            "bounded (fast)",
            "bounded (paper)",
            "speedup",
            "unbounded",
            "spin lock",
            "raw fetch-add",
        ],
        &table_rows,
    )
}

/// Run the experiment, write `BENCH_e8.json`, and return the report.
pub fn run() -> String {
    match run_checked(None) {
        Ok(report) => report,
        Err(e) => e, // unreachable: no baseline means no failure path
    }
}

/// Like [`run`], but when `baseline` names a readable `BENCH_e8.json`-shaped
/// file, also compare the fresh `bounded_fast` numbers against it and fail
/// (Err, with the report) on a >30% regression at any thread count. A
/// missing baseline file is a graceful skip, not an error.
///
/// Millisecond-scale runs are noisy (a busy CI neighbour can halve one
/// sample), so a regression verdict is only issued after taking the
/// element-wise best of up to three full measurement sweeps — genuine
/// regressions survive retries, scheduler hiccups don't. The written
/// `BENCH_e8.json` holds the merged best, which is also the right thing to
/// promote to a new baseline.
pub fn run_checked(baseline: Option<&str>) -> Result<String, String> {
    let base = match baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Err(_) => None,
            Ok(text) => Some(Json::parse(&text).map_err(|e| format!("bad baseline {path}: {e}"))?),
        },
    };

    let registry = sbu_obs::Registry::new(*THREADS.iter().max().expect("non-empty sweep"));
    let mut rows = measure_with(&registry);
    if let Some(base) = &base {
        for _ in 0..2 {
            if !compare_to_baseline(base, &rows).1 {
                break;
            }
            for (best, fresh) in rows.iter_mut().zip(measure_with(&registry)) {
                best.merge_best(&fresh);
            }
        }
    }

    let json = to_json(&rows).render();
    let mut report = render(&rows);
    let metrics = registry.snapshot();
    report.push_str(&metrics.render_table("E8  bounded-arm instruments (all sweeps)"));
    match std::fs::write("BENCH_e8.json", &json) {
        Ok(()) => report.push_str("wrote BENCH_e8.json\n"),
        Err(e) => report.push_str(&format!("could not write BENCH_e8.json: {e}\n")),
    }
    report.push_str(&write_obs_artifact("e8", &metrics));

    let Some(path) = baseline else {
        return Ok(report);
    };
    let Some(base) = base else {
        report.push_str(&format!("baseline {path} not found; check skipped\n"));
        return Ok(report);
    };
    let (lines, regressed) = compare_to_baseline(&base, &rows);
    report.push_str(&lines);
    if regressed {
        Err(format!(
            "{report}FAIL: bounded_fast regressed more than \
             {:.0}% vs {path} (best of 3 runs)",
            (1.0 - REGRESSION_FLOOR) * 100.0
        ))
    } else {
        Ok(report)
    }
}

/// Compare fresh rows to a baseline document; returns the rendered
/// comparison plus whether any thread count regressed past the floor.
pub fn compare_to_baseline(base: &Json, rows: &[E8Row]) -> (String, bool) {
    let mut out = String::new();
    let mut regressed = false;
    let empty: Vec<Json> = Vec::new();
    let base_rows = base.get("rows").and_then(Json::as_arr).unwrap_or(&empty);
    for r in rows {
        let recorded = base_rows.iter().find_map(|b| {
            (b.get("threads").and_then(Json::as_num) == Some(r.threads as f64))
                .then(|| b.get("bounded_fast").and_then(Json::as_num))
                .flatten()
        });
        match recorded {
            Some(base_tp) if base_tp > 0.0 => {
                let ratio = r.bounded_fast / base_tp;
                let verdict = if ratio < REGRESSION_FLOOR {
                    regressed = true;
                    "REGRESSION"
                } else {
                    "ok"
                };
                out.push_str(&format!(
                    "  baseline check  threads={}  {:.0} vs {:.0} ops/sec  ({:.2}×)  {}\n",
                    r.threads, r.bounded_fast, base_tp, ratio, verdict
                ));
            }
            _ => out.push_str(&format!(
                "  baseline check  threads={}  no baseline row; skipped\n",
                r.threads
            )),
        }
    }
    (out, regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(threads: usize, fast: f64) -> E8Row {
        E8Row {
            threads,
            bounded_fast: fast,
            bounded_paper: 1.0,
            unbounded: 1.0,
            spin_lock: 1.0,
            raw_fetch_add: 1.0,
        }
    }

    #[test]
    fn baseline_compare_flags_only_real_regressions() {
        let base = to_json(&[row(1, 1000.0), row(4, 1000.0)]);
        // 1 thread holds steady, 4 threads collapses: regression.
        let (out, bad) = compare_to_baseline(&base, &[row(1, 950.0), row(4, 500.0)]);
        assert!(bad);
        assert!(out.contains("REGRESSION"));
        // Noise within the 30% floor passes.
        let (_, bad) = compare_to_baseline(&base, &[row(1, 800.0), row(4, 750.0)]);
        assert!(!bad);
        // A thread count the baseline never recorded is skipped, not failed.
        let (out, bad) = compare_to_baseline(&base, &[row(2, 10.0)]);
        assert!(!bad);
        assert!(out.contains("skipped"));
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let doc = to_json(&[row(2, 123.0)]);
        assert_eq!(doc.get("experiment").unwrap().as_str(), Some("e8"));
        let rows = doc.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("threads").unwrap().as_num(), Some(2.0));
        assert_eq!(rows[0].get("bounded_fast").unwrap().as_num(), Some(123.0));
        assert!(rows[0].get("bounded_paper").is_some());
        // And it survives a round trip through the parser.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }
}
