//! E8 — native throughput of the constructions on real threads.
//!
//! Not a claim the paper makes (1989 hardware!), but the comparison every
//! modern reader wants: operations per second for the bounded universal
//! construction vs the unbounded baseline vs a spin lock vs a raw atomic
//! fetch-and-add reference, as thread count grows. The universal
//! constructions pay for wait-freedom with full-pool scans; the point is
//! progress guarantees, not raw speed.

use crate::render_table;
use sbu_core::{
    bounded::UniversalConfig, CellPayload, SpinLockUniversal, UnboundedUniversal, Universal,
    UniversalObject,
};
use sbu_mem::native::NativeMem;
use sbu_mem::{Pid, WordMem};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::sync::Arc;
use std::time::Instant;

fn throughput<U>(
    threads: usize,
    ops_per_thread: usize,
    obj: U,
    mem: NativeMem<CellPayload<CounterSpec>>,
) -> f64
where
    U: UniversalObject<CounterSpec> + Clone + 'static,
{
    let mem = Arc::new(mem);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let obj = obj.clone();
            s.spawn(move || {
                for _ in 0..ops_per_thread {
                    obj.apply(&*mem, Pid(i), &CounterOp::Inc);
                }
            });
        }
    });
    (threads * ops_per_thread) as f64 / t0.elapsed().as_secs_f64()
}

/// Run the experiment and return the report.
pub fn run() -> String {
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let ops = 2_000;

        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let bounded = Universal::new(
            &mut mem,
            threads,
            UniversalConfig::for_procs(threads),
            CounterSpec::new(),
        );
        let bounded_tp = throughput(threads, ops, bounded, mem);

        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let unbounded = UnboundedUniversal::new(&mut mem, threads, ops + 8, CounterSpec::new());
        let unbounded_tp = throughput(threads, ops, unbounded, mem);

        let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
        let lock = SpinLockUniversal::new(&mut mem, CounterSpec::new());
        let lock_tp = throughput(threads, ops, lock, mem);

        // Raw fetch-and-add reference (not linearizable *as a universal
        // object* — it IS the hardware op the constructions simulate).
        let mut mem: NativeMem<()> = NativeMem::new();
        let reg = mem.alloc_atomic(0);
        let mem = Arc::new(mem);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for i in 0..threads {
                let mem = Arc::clone(&mem);
                s.spawn(move || {
                    for _ in 0..ops {
                        mem.rmw(Pid(i), reg, &|x| x + 1);
                    }
                });
            }
        });
        let raw_tp = (threads * ops) as f64 / t0.elapsed().as_secs_f64();

        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", bounded_tp),
            format!("{:.0}", unbounded_tp),
            format!("{:.0}", lock_tp),
            format!("{:.0}", raw_tp),
        ]);
    }
    render_table(
        "E8  native throughput, ops/sec (counter; release build recommended)",
        &[
            "threads",
            "bounded universal",
            "unbounded universal",
            "spin lock",
            "raw fetch-add",
        ],
        &rows,
    )
}
