//! E10 — monitored torture throughput: native Figure 2 vs lock-based.
//!
//! Unlike E8's raw loops, both columns here run under the `sbu-stress`
//! harness with the online linearizability monitor live — every quiescent
//! window of the recorded history is checked while the workers run, so each
//! number is a *verified* ops/sec figure. The native column drives the
//! Figure 2 sticky byte (`JamWord`, helping protocol, wait-free); the
//! baseline wraps the same sequential `JamWordSpec` in the spin-lock
//! strawman (`SpinLockUniversal`, blocking). The paper's trade is progress
//! guarantees, not raw speed; on a single core the lock often wins — the
//! point is that the wait-free object stays correct and live under the same
//! torture where a lock holder can stall everyone.

use crate::{json::Json, render_table, write_obs_artifact};
use sbu_stress::{
    run_jam_backoff, run_lock_based_jam, run_workload, Inject, Options, StressConfig, Workload,
};

/// Candidate-switch backoff cap for the tuned arm. A failed bit jam spins
/// locally up to this many rounds before rescanning candidates; the shared
/// step sequence is untouched, so the monitor verdicts are identical. Picked
/// by sweeping {2, 6, 16} at 4–8 threads on the reference box.
const TUNED_BACKOFF_LIMIT: u32 = 6;

/// Run the experiment, write `BENCH_e10.json`, and return the report.
pub fn run() -> String {
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut last_native_metrics = sbu_obs::Snapshot::default();
    for &threads in &[1usize, 2, 4, 8] {
        // Each sweep point is expressed as stress-CLI flags and parsed by
        // the same `Options::parse` the stress example uses, so E10 can
        // never drift from the driver's flag semantics or defaults.
        let opts = Options::parse([
            "--threads".to_string(),
            threads.to_string(),
            "--ops".to_string(),
            "4000".to_string(),
            "--seed".to_string(),
            0xE10u64.to_string(),
        ])
        .expect("E10's own flag list parses");
        let mut cfg = StressConfig::new(
            opts.threads,
            opts.total_ops.div_ceil(opts.threads),
            opts.seed,
        );
        cfg.objects = opts.objects;

        let native = run_workload(Workload::Jam, &cfg, Inject::None);
        native.assert_clean();
        let tuned = run_jam_backoff(&cfg, TUNED_BACKOFF_LIMIT);
        tuned.assert_clean();
        let lock = run_lock_based_jam(&cfg);
        lock.assert_clean();
        last_native_metrics = native.metrics.clone();

        rows.push(vec![
            threads.to_string(),
            format!("{:.0}", native.ops_per_sec()),
            format!("{:.0}", tuned.ops_per_sec()),
            format!("{:.0}", lock.ops_per_sec()),
            format!("{:.2}x", tuned.ops_per_sec() / lock.ops_per_sec()),
            native.windows_checked.to_string(),
            lock.windows_checked.to_string(),
        ]);
        json_rows.push(Json::obj(vec![
            ("threads", Json::Num(threads as f64)),
            ("native_jam", Json::Num(native.ops_per_sec())),
            ("native_jam_tuned", Json::Num(tuned.ops_per_sec())),
            (
                "tuned_backoff_limit",
                Json::Num(f64::from(TUNED_BACKOFF_LIMIT)),
            ),
            ("spin_lock_jam", Json::Num(lock.ops_per_sec())),
            ("windows_native", Json::Num(native.windows_checked as f64)),
            ("windows_lock", Json::Num(lock.windows_checked as f64)),
        ]));
    }
    let doc = Json::obj(vec![
        ("experiment", Json::Str("e10".into())),
        ("object", Json::Str("jam_word".into())),
        ("unit", Json::Str("ops_per_sec".into())),
        ("rows", Json::Arr(json_rows)),
    ]);
    let mut report = render_table(
        "E10  monitored torture, ops/sec (Figure 2 JamWord; every window checked online)",
        &[
            "threads",
            "native jam",
            "tuned jam",
            "spin-lock jam",
            "tuned/lock",
            "windows (native)",
            "windows (lock)",
        ],
        &rows,
    );
    if !last_native_metrics.is_empty() {
        report.push('\n');
        report.push_str(
            &last_native_metrics.render_table("E10  native-arm instruments (8-thread sweep)"),
        );
    }
    match std::fs::write("BENCH_e10.json", doc.render()) {
        Ok(()) => report.push_str("wrote BENCH_e10.json\n"),
        Err(e) => report.push_str(&format!("could not write BENCH_e10.json: {e}\n")),
    }
    report.push_str(&write_obs_artifact("e10", &last_native_metrics));
    report
}
