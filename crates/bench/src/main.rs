//! `exp` — regenerate the paper-reproduction tables (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p sbu-bench --bin exp -- all
//! cargo run --release -p sbu-bench --bin exp -- e1 e5
//! cargo run --release -p sbu-bench --bin exp -- e8 --baseline benchmarks/BENCH_e8_baseline.json
//! ```
//!
//! E8/E10/E11 also write `BENCH_<exp>.json` next to the working directory
//! (schema in EXPERIMENTS.md). With `--baseline <path>`, E8 additionally
//! compares its fresh numbers against the recorded baseline and exits
//! non-zero on a >30% `bounded_fast` regression — the CI perf smoke.
//!
//! `exp e12` sweeps the sharded `sbu-service` runtime; `exp e12 --smoke`
//! is the capped CI arm (1 vs 4 shards at 4 clients, exits non-zero if
//! sharding does not pay or `service.route` recorded nothing under obs).
//!
//! `exp scenarios [...]` runs the deterministic scenario matrix instead
//! (see `sbu-scenario` and EXPERIMENTS.md): every remaining argument goes
//! to that driver, and its exit code (0 ok / 1 verdict or coverage
//! regression / 2 usage) becomes the process's.

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The scenario matrix has its own flag surface; hand everything after
    // the subcommand name straight through.
    if args.first().map(String::as_str) == Some("scenarios") {
        std::process::exit(sbu_scenario::cli::run(&args[1..]));
    }
    let mut baseline: Option<String> = None;
    let mut smoke = false;
    let mut names: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--baseline" {
            match iter.next() {
                Some(path) => baseline = Some(path.clone()),
                None => {
                    eprintln!("--baseline requires a path");
                    std::process::exit(2);
                }
            }
        } else if arg == "--smoke" {
            smoke = true;
        } else {
            names.push(arg.as_str());
        }
    }
    let selected: Vec<&str> = if names.is_empty() || names.contains(&"all") {
        vec![
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12",
        ]
    } else {
        names
    };
    for exp in selected {
        let t0 = Instant::now();
        let report = match exp {
            "e1" => sbu_bench::e1_sticky_byte::run(),
            "e2" => sbu_bench::e2_election::run(),
            "e3" => sbu_bench::e3_space::run(),
            "e4" => sbu_bench::e4_time::run(),
            "e5" => sbu_bench::e5_crash::run(),
            "e6" => sbu_bench::e6_hierarchy::run(),
            "e7" => sbu_bench::e7_randomized::run(),
            "e8" => match sbu_bench::e8_throughput::run_checked(baseline.as_deref()) {
                Ok(report) => report,
                Err(report) => {
                    println!("{report}");
                    std::process::exit(1);
                }
            },
            "e9" => sbu_bench::e9_explore::run(),
            "e10" => sbu_bench::e10_stress::run(),
            "e11" => sbu_bench::e11_recovery::run(),
            "e12" if smoke => match sbu_bench::e12_service::run_smoke() {
                Ok(report) => report,
                Err(report) => {
                    println!("{report}");
                    std::process::exit(1);
                }
            },
            "e12" => sbu_bench::e12_service::run(),
            other => {
                eprintln!("unknown experiment {other:?}; use e1..e12, scenarios, or all");
                std::process::exit(2);
            }
        };
        println!("{report}");
        println!("[{exp} took {:.1?}]\n", t0.elapsed());
    }
}
