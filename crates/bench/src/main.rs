//! `exp` — regenerate the paper-reproduction tables (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p sbu-bench --bin exp -- all
//! cargo run --release -p sbu-bench --bin exp -- e1 e5
//! ```

use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for exp in selected {
        let t0 = Instant::now();
        let report = match exp {
            "e1" => sbu_bench::e1_sticky_byte::run(),
            "e2" => sbu_bench::e2_election::run(),
            "e3" => sbu_bench::e3_space::run(),
            "e4" => sbu_bench::e4_time::run(),
            "e5" => sbu_bench::e5_crash::run(),
            "e6" => sbu_bench::e6_hierarchy::run(),
            "e7" => sbu_bench::e7_randomized::run(),
            "e8" => sbu_bench::e8_throughput::run(),
            "e9" => sbu_bench::e9_explore::run(),
            "e10" => sbu_bench::e10_stress::run(),
            "e11" => sbu_bench::e11_recovery::run(),
            other => {
                eprintln!("unknown experiment {other:?}; use e1..e11 or all");
                std::process::exit(2);
            }
        };
        println!("{report}");
        println!("[{exp} took {:.1?}]\n", t0.elapsed());
    }
}
