//! E4 — Section 6.4's time bounds.
//!
//! Paper claims, with T the safe implementation's cost per access:
//! sequential (uncontended) access costs O(T + n² log n); the worst case
//! under contention costs O(nT + n³ log n). The dominant measured term is
//! the full-pool scans (pool = Θ(n²)), so steps/op should track n² solo
//! and stay within an n³-ish envelope contended.

use crate::render_table;
use sbu_core::{bounded::UniversalConfig, CellPayload, Universal};
use sbu_mem::WordMem;
use sbu_sim::{run_uniform, RandomAdversary, RoundRobin, RunOptions, SimMem};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::sync::Arc;

/// Run the experiment and return the report.
pub fn run() -> String {
    // Solo: a single processor on an object built for n processors.
    let mut rows = Vec::new();
    for &n in &[1usize, 2, 3, 4, 6, 8] {
        let ops = 5;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(1);
        // E4a/E4b measure the *paper's* scans — the fast paths are the
        // ablation arm of E4c below.
        let obj = Universal::builder(n)
            .config(UniversalConfig::for_procs(n).paper_scans())
            .build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions {
                max_steps: 500_000_000,
            },
            1,
            move |mem, pid| {
                for _ in 0..ops {
                    obj2.apply(mem, pid, &CounterOp::Inc);
                }
            },
        );
        out.assert_clean();
        let per_op = out.steps as f64 / ops as f64;
        rows.push(vec![
            n.to_string(),
            format!("{per_op:.0}"),
            format!("{:.1}", per_op / (n * n) as f64),
        ]);
    }
    let solo = render_table(
        "E4a  solo cost per operation (claim: O(T + n² log n) — per-op/n² \
         roughly flat)",
        &["n", "steps/op", "steps/op/n²"],
        &rows,
    );

    // Contended: n processors, adversarial schedules; worst single-op cost.
    let mut rows = Vec::new();
    for &n in &[2usize, 3, 4, 6] {
        let ops = 3;
        let mut worst = 0u64;
        let mut mean_acc = 0f64;
        let mut count = 0usize;
        for seed in 0..8 {
            let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
            let obj = Universal::builder(n)
                .config(UniversalConfig::for_procs(n).paper_scans())
                .build(&mut mem, CounterSpec::new());
            let obj2 = obj.clone();
            let spans: Arc<parking_lot::Mutex<Vec<u64>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let spans2 = Arc::clone(&spans);
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions {
                    max_steps: 500_000_000,
                },
                n,
                move |mem, pid| {
                    for _ in 0..ops {
                        let t0 = mem.op_invoke(pid);
                        obj2.apply(mem, pid, &CounterOp::Inc);
                        let t1 = mem.op_return(pid);
                        spans2.lock().push(t1 - t0);
                    }
                },
            );
            out.assert_clean();
            for s in spans.lock().iter() {
                worst = worst.max(*s);
                mean_acc += *s as f64;
                count += 1;
            }
        }
        let mean = mean_acc / count as f64;
        rows.push(vec![
            n.to_string(),
            format!("{mean:.0}"),
            worst.to_string(),
            format!("{:.1}", worst as f64 / (n * n * n) as f64),
        ]);
    }
    let contended = render_table(
        "E4b  contended cost per operation, adversarial schedules (claim: \
         worst case O(nT + n³ log n))",
        &["n", "mean steps/op", "worst steps/op", "worst/n³"],
        &rows,
    );

    // Ablation: the locality fast paths (our answer to the paper's §7 open
    // problem on time complexity). FIND-HEAD's full-pool scan dominates the
    // solo cost; remembering the last head and walking forward along Prev
    // links removes it whenever the hint is still warm.
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8] {
        // Enough operations to reach the reclamation steady state (a cell
        // is reclaimable only once n snapshots sit ahead of it).
        let ops = 4 * n + 8;
        let cost = |hints: bool| -> f64 {
            let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(1);
            let config = if hints {
                UniversalConfig::for_procs(n)
            } else {
                UniversalConfig::for_procs(n).paper_scans()
            };
            let obj = Universal::builder(n)
                .config(config)
                .build(&mut mem, CounterSpec::new());
            let obj2 = obj.clone();
            let out = run_uniform(
                &mem,
                Box::new(RoundRobin::new()),
                RunOptions {
                    max_steps: 500_000_000,
                },
                1,
                move |mem, pid| {
                    for _ in 0..ops {
                        obj2.apply(mem, pid, &CounterOp::Inc);
                    }
                },
            );
            out.assert_clean();
            out.steps as f64 / ops as f64
        };
        let base = cost(false);
        let hinted = cost(true);
        rows.push(vec![
            n.to_string(),
            format!("{base:.0}"),
            format!("{hinted:.0}"),
            format!("{:.2}×", base / hinted),
        ]);
    }
    let ablation = render_table(
        "E4c  ablation: FIND-HEAD locality fast paths (§7 open-problem \
         extension), solo steps/op",
        &["n", "full scan", "with hints", "speedup"],
        &rows,
    );

    format!("{solo}\n{contended}\n{ablation}")
}
