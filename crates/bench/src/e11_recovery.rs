//! E11 — the price of durability: recoverable objects vs their
//! non-durable counterparts on real threads.
//!
//! The crash–restart PR adds `DurableMem` (persistence bookkeeping + torn
//! fences) and recovery protocols (`RecoverableJamWord`, the recoverable
//! bounded counter via `Universal::recover`). Durability is not free: every
//! sticky write is tracked until fenced, and the recoverable jam announces
//! durably and fences per bit. This experiment quantifies the slowdown the
//! robustness buys, plus the one-off cost of a post-crash recovery sweep.
//! Numbers vary by machine; the *shape* (modest constant-factor overhead,
//! microsecond-scale recovery) is the reproducible claim.

use crate::{json::Json, render_table, write_obs_artifact};
use sbu_core::{CellPayload, Universal};
use sbu_mem::native::NativeMem;
use sbu_mem::{DurableMem, Pid, TornPersist, Word};
use sbu_spec::specs::{CounterOp, CounterSpec};
use sbu_sticky::{JamWord, RecoverableJamWord};
use std::sync::Arc;
use std::time::Instant;

const JAM_OBJECTS: usize = 512;
const COUNTER_OPS: usize = 1_000;
const WIDTH: u32 = 3;

fn value_for(pid: Pid) -> Word {
    (pid.0 as Word) % (1 << WIDTH)
}

/// Every thread jams its fixed value into each of `JAM_OBJECTS` fresh jam
/// words, then reads each one back: `threads * objects * 2` operations.
fn plain_jam_throughput(threads: usize) -> f64 {
    let mut mem: NativeMem<()> = NativeMem::new();
    let words: Vec<JamWord> = (0..JAM_OBJECTS)
        .map(|_| JamWord::new(&mut mem, threads, WIDTH))
        .collect();
    let mem = Arc::new(mem);
    let words = Arc::new(words);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let words = Arc::clone(&words);
            s.spawn(move || {
                for w in words.iter() {
                    w.jam(&*mem, Pid(i), value_for(Pid(i)));
                    w.read(&*mem, Pid(i));
                }
            });
        }
    });
    (threads * JAM_OBJECTS * 2) as f64 / t0.elapsed().as_secs_f64()
}

/// Same workload over the durable backend with the recoverable protocol;
/// also returns the post-crash recovery sweep cost in µs per object.
fn recoverable_jam_throughput(threads: usize) -> (f64, f64) {
    let mut mem: DurableMem<NativeMem<()>> =
        DurableMem::with_policy(NativeMem::new(), TornPersist::Persist);
    let words: Vec<RecoverableJamWord> = (0..JAM_OBJECTS)
        .map(|_| RecoverableJamWord::new(&mut mem, threads, WIDTH))
        .collect();
    let mem = Arc::new(mem);
    let words = Arc::new(words);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let words = Arc::clone(&words);
            s.spawn(move || {
                for w in words.iter() {
                    w.jam(&*mem, Pid(i), value_for(Pid(i)));
                    w.read(&*mem, Pid(i));
                }
            });
        }
    });
    let tp = (threads * JAM_OBJECTS * 2) as f64 / t0.elapsed().as_secs_f64();

    // Recovery sweep: crash pid 0, restart it, re-drive its announced jam
    // on every object. One-off cost paid at restart, not per operation.
    mem.crash::<()>(&[Pid(0)]);
    mem.restart(Pid(0));
    let t1 = Instant::now();
    for w in words.iter() {
        w.recover(&*mem, Pid(0));
    }
    let sweep_us = t1.elapsed().as_secs_f64() * 1e6 / JAM_OBJECTS as f64;
    (tp, sweep_us)
}

/// Bounded universal counter over the native backend (non-durable baseline).
fn plain_counter_throughput(threads: usize, registry: &sbu_obs::Registry) -> f64 {
    let mut mem: NativeMem<CellPayload<CounterSpec>> = NativeMem::new();
    mem.attach_obs(registry);
    let counter = Universal::builder(threads)
        .obs(registry)
        .build(&mut mem, CounterSpec::new());
    let mem = Arc::new(mem);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..COUNTER_OPS {
                    counter.apply(&*mem, Pid(i), &CounterOp::Inc);
                }
            });
        }
    });
    (threads * COUNTER_OPS) as f64 / t0.elapsed().as_secs_f64()
}

/// The same counter over `DurableMem` (recoverable via `Universal::recover`);
/// also returns the post-crash recovery cost in µs.
fn recoverable_counter_throughput(threads: usize, registry: &sbu_obs::Registry) -> (f64, f64) {
    let mut mem: DurableMem<NativeMem<CellPayload<CounterSpec>>> =
        DurableMem::with_policy(NativeMem::new(), TornPersist::Persist);
    mem.attach_obs(registry);
    mem.inner_mut().attach_obs(registry);
    let counter = Universal::builder(threads)
        .obs(registry)
        .build(&mut mem, CounterSpec::new());
    let mem = Arc::new(mem);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..COUNTER_OPS {
                    counter.apply(&*mem, Pid(i), &CounterOp::Inc);
                }
            });
        }
    });
    let tp = (threads * COUNTER_OPS) as f64 / t0.elapsed().as_secs_f64();

    mem.crash::<CellPayload<CounterSpec>>(&[Pid(0)]);
    mem.restart(Pid(0));
    let t1 = Instant::now();
    counter.recover(&*mem, Pid(0));
    let recover_us = t1.elapsed().as_secs_f64() * 1e6;
    (tp, recover_us)
}

/// Run the experiment, write `BENCH_e11.json`, and return the report.
pub fn run() -> String {
    let mut jam_rows = Vec::new();
    let mut ctr_rows = Vec::new();
    let mut json_rows = Vec::new();
    let registry = sbu_obs::Registry::new(8);
    for &threads in &[1usize, 2, 4, 8] {
        let plain_jam = plain_jam_throughput(threads);
        let (rec_jam, sweep_us) = recoverable_jam_throughput(threads);
        jam_rows.push(vec![
            threads.to_string(),
            format!("{plain_jam:.0}"),
            format!("{rec_jam:.0}"),
            format!("{:.1}x", plain_jam / rec_jam),
            format!("{sweep_us:.1}"),
        ]);

        let plain_ctr = plain_counter_throughput(threads, &registry);
        let (rec_ctr, recover_us) = recoverable_counter_throughput(threads, &registry);
        ctr_rows.push(vec![
            threads.to_string(),
            format!("{plain_ctr:.0}"),
            format!("{rec_ctr:.0}"),
            format!("{:.1}x", plain_ctr / rec_ctr),
            format!("{recover_us:.1}"),
        ]);

        json_rows.push(Json::obj(vec![
            ("threads", Json::Num(threads as f64)),
            ("jam_plain", Json::Num(plain_jam)),
            ("jam_recoverable", Json::Num(rec_jam)),
            ("jam_recover_us_per_obj", Json::Num(sweep_us)),
            ("counter_plain", Json::Num(plain_ctr)),
            ("counter_recoverable", Json::Num(rec_ctr)),
            ("counter_recover_us", Json::Num(recover_us)),
        ]));
    }
    let doc = Json::obj(vec![
        ("experiment", Json::Str("e11".into())),
        ("unit", Json::Str("ops_per_sec".into())),
        ("rows", Json::Arr(json_rows)),
    ]);
    let mut out = render_table(
        "E11a  durability tax, jam word: ops/sec (jam+read over fresh objects)",
        &[
            "threads",
            "plain JamWord",
            "RecoverableJamWord",
            "slowdown",
            "recover µs/obj",
        ],
        &jam_rows,
    );
    out.push('\n');
    out.push_str(&render_table(
        "E11b  durability tax, bounded counter: ops/sec (universal Inc)",
        &[
            "threads",
            "NativeMem",
            "DurableMem",
            "slowdown",
            "recover µs",
        ],
        &ctr_rows,
    ));
    let metrics = registry.snapshot();
    if !metrics.is_empty() {
        out.push('\n');
        out.push_str(&metrics.render_table("E11  counter-arm instruments (all sweeps)"));
    }
    match std::fs::write("BENCH_e11.json", doc.render()) {
        Ok(()) => out.push_str("wrote BENCH_e11.json\n"),
        Err(e) => out.push_str(&format!("could not write BENCH_e11.json: {e}\n")),
    }
    out.push_str(&write_obs_artifact("e11", &metrics));
    out
}
