//! E1 — the Sticky Byte (Figure 2): correctness rate under adversarial
//! schedules and cost linear in the width ℓ.
//!
//! Paper claim: `Jam(v)` over ℓ sticky bits with helping is wait-free and
//! atomic; "an atomic Sticky Byte that holds an arbitrary number of bits
//! can be implemented from log n atomic Sticky Bits" with O(ℓ) access.

use crate::render_table;
use sbu_mem::{Pid, Word};
use sbu_sim::{run_uniform, RandomAdversary, RoundRobin, RunOptions, SimMem};
use sbu_sticky::JamWord;

/// Run the experiment and return the report.
pub fn run() -> String {
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8] {
        for &width in &[4u32, 8, 16] {
            let seeds = 120;
            let mut agree = 0;
            let mut valid = 0;
            for seed in 0..seeds {
                let mut mem: SimMem<()> = SimMem::new(n);
                let jw = JamWord::new(&mut mem, n, width);
                let jw2 = jw.clone();
                let out = run_uniform(
                    &mem,
                    Box::new(RandomAdversary::new(seed).with_crashes(1, 10_000)),
                    RunOptions::default(),
                    n,
                    move |mem, pid| jw2.jam(mem, pid, pid.0 as Word + 1),
                );
                assert!(out.violations.is_empty());
                let final_value = jw.read(&mem, Pid(0));
                let results: Vec<(sbu_mem::JamOutcome, Word)> =
                    out.results().into_iter().cloned().collect();
                if !results.is_empty() {
                    let fv = final_value.expect("completers define the byte");
                    if results.iter().all(|(_, seen)| *seen == fv) {
                        agree += 1;
                    }
                    if (1..=n as u64).contains(&fv) {
                        valid += 1;
                    }
                } else {
                    agree += 1;
                    valid += 1;
                }
            }
            rows.push(vec![
                n.to_string(),
                width.to_string(),
                seeds.to_string(),
                format!("{:.1}%", 100.0 * agree as f64 / seeds as f64),
                format!("{:.1}%", 100.0 * valid as f64 / seeds as f64),
            ]);
        }
    }
    let correctness = render_table(
        "E1a  Sticky Byte (Fig 2): agreement & validity under adversarial \
         schedules + 1 crash",
        &["n", "width ℓ", "runs", "agreement", "validity"],
        &rows,
    );

    // Cost: solo jam steps vs ℓ (claim: linear in ℓ).
    let mut rows = Vec::new();
    for &width in &[2u32, 4, 8, 16, 32] {
        let mut mem: SimMem<()> = SimMem::new(1);
        let jw = JamWord::new(&mut mem, 1, width);
        let jw2 = jw.clone();
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions::default(),
            1,
            move |mem, pid| jw2.jam(mem, pid, 1),
        );
        rows.push(vec![
            width.to_string(),
            out.steps.to_string(),
            format!("{:.2}", out.steps as f64 / width as f64),
        ]);
    }
    let solo = render_table(
        "E1b  solo Jam cost vs width (claim: O(ℓ) — steps/ℓ flat)",
        &["width ℓ", "steps", "steps/ℓ"],
        &rows,
    );

    // Contended cost: n procs jam distinct values, worst per-proc steps.
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8] {
        let width = 16;
        let mut worst = 0;
        for seed in 0..20 {
            let mut mem: SimMem<()> = SimMem::new(n);
            let jw = JamWord::new(&mut mem, n, width);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions::default(),
                n,
                move |mem, pid| jw2.jam(mem, pid, pid.0 as Word + 1),
            );
            worst = worst.max(*out.steps_per_proc.iter().max().unwrap());
        }
        rows.push(vec![n.to_string(), width.to_string(), worst.to_string()]);
    }
    let contended = render_table(
        "E1c  contended Jam, worst per-processor steps (ℓ = 16, 20 seeds)",
        &["n", "width ℓ", "worst steps"],
        &rows,
    );

    // Ablation: what Figure 2's helping actually buys. The "oblivious"
    // strawman jams all bits ignoring failures (can blend two proposals
    // into a value nobody proposed); the "early-return" strawman gives up
    // on the first failed bit (a crashed winner strands the byte
    // undefined). Figure 2 has neither defect.
    let mut rows = Vec::new();
    let n = 2;
    let seeds = 400;
    for variant in ["fig2 (helping)", "oblivious", "early-return"] {
        let mut blends = 0;
        let mut undefined = 0;
        for seed in 0..seeds {
            let mut mem: SimMem<()> = SimMem::new(n);
            let jw = JamWord::new(&mut mem, n, 2);
            let jw2 = jw.clone();
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed).with_crashes(1, 40_000)),
                RunOptions::default(),
                n,
                move |mem, pid| {
                    let value = if pid.0 == 0 { 0b01 } else { 0b10 };
                    match variant {
                        "fig2 (helping)" => {
                            jw2.jam(mem, pid, value);
                        }
                        "oblivious" => {
                            jw2.jam_oblivious(mem, pid, value);
                        }
                        _ => {
                            jw2.jam_naive(mem, pid, value);
                        }
                    }
                },
            );
            match jw.read(&mem, Pid(0)) {
                Some(v) if v != 0b01 && v != 0b10 => blends += 1,
                None if out.completed_count() > 0 => undefined += 1,
                _ => {}
            }
        }
        rows.push(vec![
            variant.to_string(),
            format!("{:.1}%", 100.0 * blends as f64 / seeds as f64),
            format!("{:.1}%", 100.0 * undefined as f64 / seeds as f64),
        ]);
    }
    let ablation = render_table(
        "E1d  ablation: Figure 2's helping vs the two strawmen (2 procs jam \
         0b01 vs 0b10; 400 adversarial runs with crashes)",
        &["variant", "blended value", "stranded ⊥ despite completer"],
        &rows,
    );

    format!("{correctness}\n{solo}\n{contended}\n{ablation}")
}
