//! E5 — the introduction's motivation: a crash inside a lock-based object
//! stalls the system to "the speed of the slowest component, which can be
//! zero if this component has failed"; the wait-free constructions don't
//! care.
//!
//! Workload: n processors run queue operations; the adversary crashes one
//! of them mid-operation. We report survivor progress and whether the run
//! wedged (hit the step limit with processors spinning).

use crate::render_table;
use sbu_core::{
    CellPayload, ConsensusUniversal, SpinLockUniversal, UnboundedUniversal, Universal,
    UniversalObject,
};
use sbu_mem::Pid;
use sbu_sim::{run_uniform, CrashPlan, RoundRobin, RunOptions, SimMem};
use sbu_spec::specs::{QueueOp, QueueSpec};

fn run_consensus_scenario(crash: bool) -> (usize, bool) {
    use sbu_sticky::consensus::StickyWordConsensus;
    let n = 3;
    let ops = 6;
    let mut mem: SimMem<CellPayload<QueueSpec>> = SimMem::new(n);
    let obj = ConsensusUniversal::new(&mut mem, n, 16, QueueSpec::new(), StickyWordConsensus::new);
    let targets = if crash { vec![(Pid(0), 1)] } else { vec![] };
    let out = run_uniform(
        &mem,
        Box::new(CrashPlan::new(targets, RoundRobin::new())),
        RunOptions { max_steps: 300_000 },
        n,
        move |mem, pid| {
            let mut done = 0usize;
            for i in 0..ops {
                let op = if i % 2 == 0 {
                    QueueOp::Enqueue((pid.0 * 10 + i) as u64)
                } else {
                    QueueOp::Dequeue
                };
                obj.apply(mem, pid, &op);
                done += 1;
            }
            done
        },
    );
    let survivor_ops: usize = out.results().into_iter().copied().sum();
    (survivor_ops, out.aborted)
}

fn run_scenario<U>(
    make: impl Fn(&mut SimMem<CellPayload<QueueSpec>>) -> U,
    crash: bool,
) -> (usize, bool)
where
    U: UniversalObject<QueueSpec> + Clone + 'static,
{
    let n = 3;
    let ops = 6;
    let mut mem: SimMem<CellPayload<QueueSpec>> = SimMem::new(n);
    let obj = make(&mut mem);
    let targets = if crash {
        // Under round-robin, pid 0 takes the first step(s) — for the lock
        // construction that is the lock acquisition.
        vec![(Pid(0), 1)]
    } else {
        vec![]
    };
    let out = run_uniform(
        &mem,
        Box::new(CrashPlan::new(targets, RoundRobin::new())),
        RunOptions { max_steps: 300_000 },
        n,
        move |mem, pid| {
            let mut done = 0usize;
            for i in 0..ops {
                let op = if i % 2 == 0 {
                    QueueOp::Enqueue((pid.0 * 10 + i) as u64)
                } else {
                    QueueOp::Dequeue
                };
                obj.apply(mem, pid, &op);
                done += 1;
            }
            done
        },
    );
    let survivor_ops: usize = out.results().into_iter().copied().sum();
    (survivor_ops, out.aborted)
}

/// Run the experiment and return the report.
pub fn run() -> String {
    let mut rows = Vec::new();
    type Scenario = Box<dyn Fn(bool) -> (usize, bool)>;
    let cases: Vec<(&str, Scenario)> = vec![
        (
            "bounded universal (paper)",
            Box::new(|crash| {
                run_scenario(
                    |mem| Universal::builder(3).build(mem, QueueSpec::new()),
                    crash,
                )
            }),
        ),
        (
            "unbounded universal (Herlihy)",
            Box::new(|crash| {
                run_scenario(
                    |mem| UnboundedUniversal::new(mem, 3, 16, QueueSpec::new()),
                    crash,
                )
            }),
        ),
        (
            "consensus universal (title)",
            Box::new(run_consensus_scenario),
        ),
        (
            "lock-based (strawman)",
            Box::new(|crash| {
                run_scenario(|mem| SpinLockUniversal::new(mem, QueueSpec::new()), crash)
            }),
        ),
    ];
    for (name, scenario) in &cases {
        for crash in [false, true] {
            let (survivor_ops, wedged) = scenario(crash);
            rows.push(vec![
                name.to_string(),
                if crash {
                    "p0 mid-op".into()
                } else {
                    "none".into()
                },
                survivor_ops.to_string(),
                if wedged { "WEDGED".into() } else { "no".into() },
            ]);
        }
    }
    render_table(
        "E5  crash resilience (3 procs × 6 queue ops; survivors should \
         complete 12 ops after p0 dies)",
        &[
            "construction",
            "crash",
            "ops completed by survivors",
            "wedged",
        ],
        &rows,
    )
}
