//! E2 — leader election in O(log n) (Section 4).
//!
//! Paper claim: jamming processor ids into a ⌈log₂ n⌉-bit sticky byte
//! elects a leader wait-free "in O(log n) time".

use crate::render_table;
use sbu_mem::Pid;
use sbu_sim::{run_uniform, RandomAdversary, RoundRobin, RunOptions, SimMem};
use sbu_sticky::LeaderElection;

/// Run the experiment and return the report.
pub fn run() -> String {
    // Solo cost: uncontended elect() steps vs n.
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
        let mut mem: SimMem<()> = SimMem::new(1);
        let le = LeaderElection::new(&mut mem, n);
        let le2 = le.clone();
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions::default(),
            1,
            move |mem, _| le2.elect(mem, Pid(0)),
        );
        let log2 = (n as f64).log2();
        rows.push(vec![
            n.to_string(),
            out.steps.to_string(),
            format!("{log2:.0}"),
            format!("{:.2}", out.steps as f64 / log2.max(1.0)),
        ]);
    }
    let solo = render_table(
        "E2a  solo election cost (claim: O(log n) — steps/log₂n flat)",
        &["n", "steps", "log₂n", "steps/log₂n"],
        &rows,
    );

    // Contended: all n participate; uniqueness checked; worst steps.
    let mut rows = Vec::new();
    for &n in &[2usize, 4, 8, 16] {
        let mut worst = 0;
        let mut unique = true;
        for seed in 0..20 {
            let mut mem: SimMem<()> = SimMem::new(n);
            let le = LeaderElection::new(&mut mem, n);
            let le2 = le.clone();
            let out = run_uniform(
                &mem,
                Box::new(RandomAdversary::new(seed)),
                RunOptions::default(),
                n,
                move |mem, pid| le2.elect(mem, pid),
            );
            out.assert_clean();
            let leaders: Vec<Pid> = out.results().into_iter().copied().collect();
            unique &= leaders.iter().all(|&l| l == leaders[0]);
            worst = worst.max(*out.steps_per_proc.iter().max().unwrap());
        }
        rows.push(vec![
            n.to_string(),
            worst.to_string(),
            if unique { "yes".into() } else { "NO".into() },
        ]);
    }
    let contended = render_table(
        "E2b  contended election (20 seeds): worst per-processor steps, \
         unique agreed leader",
        &["n", "worst steps", "unique leader"],
        &rows,
    );

    format!("{solo}\n{contended}")
}
