//! E9 — model checking at scale: dynamic partial-order reduction versus
//! naive DFS on the paper's own constructions.
//!
//! The explorer's claim is operational rather than from the paper: one
//! representative per Mazurkiewicz trace suffices, so DPOR should exhaust
//! the same schedule trees in a fraction of the episodes. This experiment
//! reports, per system, the naive and reduced schedule counts, the
//! reduction ratio, and raw throughput (schedules/second) of the reduced
//! search.

use std::time::Instant;

use crate::render_table;
use sbu_mem::{Pid, WordMem};
use sbu_sim::{run_uniform, EpisodeResult, Explorer, RunOptions, Scripted, SimMem};
use sbu_sticky::JamWord;

/// Disjoint writers: w processors, each writing its own register `steps`
/// times. Fully independent — the best case for reduction.
fn disjoint_episode(script: &[usize], procs: usize, steps: usize) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(procs);
    let regs: Vec<_> = (0..procs).map(|_| mem.alloc_atomic(0)).collect();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec())),
        RunOptions::default(),
        procs,
        move |mem, pid| {
            for s in 0..steps {
                mem.atomic_write(pid, regs[pid.0], s as u64);
            }
        },
    );
    EpisodeResult::from_outcome(&out, Ok(()))
}

/// The Figure 2 sticky byte under jam contention, optionally with ≤1 crash.
fn fig2_episode(script: &[usize], crashes: usize) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let jw = JamWord::new(&mut mem, 2, 2);
    let jw2 = jw.clone();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec()).with_crashes(crashes)),
        RunOptions::default(),
        2,
        move |mem, pid| {
            let value = if pid.0 == 0 { 0b01 } else { 0b10 };
            jw2.jam(mem, pid, value)
        },
    );
    let verdict = if out.violations.is_empty() {
        Ok(())
    } else {
        Err(format!("violations: {:?}", out.violations))
    };
    let _ = jw.read(&mem, Pid(0));
    EpisodeResult::from_outcome(&out, verdict)
}

fn measure<F>(name: &str, episode: F) -> Vec<String>
where
    F: Fn(&[usize]) -> EpisodeResult,
{
    let explorer = Explorer::new(5_000_000);
    let naive_start = Instant::now();
    let naive = explorer.explore(&episode);
    let naive_time = naive_start.elapsed();
    let dpor_start = Instant::now();
    let dpor = explorer.explore_dpor(&episode);
    let dpor_time = dpor_start.elapsed();
    assert!(naive.complete && dpor.complete, "{name}: raise the budget");
    assert!(naive.failures.is_empty() && dpor.failures.is_empty());
    let rate = dpor.schedules as f64 / dpor_time.as_secs_f64().max(1e-9);
    vec![
        name.to_string(),
        naive.schedules.to_string(),
        dpor.schedules.to_string(),
        format!("{:.1}×", naive.schedules as f64 / dpor.schedules as f64),
        format!("{:.0} ms", naive_time.as_secs_f64() * 1e3),
        format!("{:.0} ms", dpor_time.as_secs_f64() * 1e3),
        format!("{rate:.0}/s"),
    ]
}

/// Run the experiment and return the report.
pub fn run() -> String {
    let rows = vec![
        measure("disjoint 2×3", |s| disjoint_episode(s, 2, 3)),
        measure("disjoint 3×2", |s| disjoint_episode(s, 3, 2)),
        measure("disjoint 3×3", |s| disjoint_episode(s, 3, 3)),
        measure("fig2 jam 2p w2", |s| fig2_episode(s, 0)),
        measure("fig2 jam 2p w2 +crash", |s| fig2_episode(s, 1)),
    ];
    render_table(
        "E9  Schedule exploration: naive DFS vs dynamic partial-order \
         reduction (complete trees, zero counterexamples lost)",
        &[
            "system",
            "naive",
            "DPOR",
            "reduction",
            "naive time",
            "DPOR time",
            "DPOR rate",
        ],
        &rows,
    )
}
