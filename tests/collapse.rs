//! The RMW-hierarchy collapse, end to end (Sections 1 & 7):
//! 3-valued RMW ⟶ sticky bit ⟶ universal construction ⟶ *any* RMW object.
//!
//! The missing arrow in `sbu-rmw` — an arbitrary k-valued RMW implemented
//! *from* sticky-bit-level primitives — is an instance of the universal
//! construction, so it lives here where both crates are available.

use std::sync::Arc;
use sticky_universality::prelude::*;
use sticky_universality::rmw::{RmwStickyBit, StickyTas};
use sticky_universality::spec::specs::{CasOp, CasResp};

/// A full 64-bit CAS register (consensus number ∞) driven from 3-valued
/// primitives, fuzzed in the simulator with linearizability checking.
#[test]
fn cas_from_sticky_primitives_is_linearizable() {
    for seed in 0..10 {
        let n = 3;
        let mut mem: SimMem<CellPayload<CasSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, CasSpec::new());
        let rec: Arc<HistoryRecorder<CasOp, CasResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                let ops = [
                    CasOp::Cas {
                        expect: 0,
                        new: pid.0 as u64 + 1,
                    },
                    CasOp::Read,
                    CasOp::Cas {
                        expect: pid.0 as u64 + 1,
                        new: 100,
                    },
                ];
                for op in ops {
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert!(
            sticky_universality::spec::linearize::check(&h, CasSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// The chain of simulations in one breath: a 3-valued RMW register
/// simulates a sticky bit; that sticky bit's semantics (checked against
/// `StickySpec` elsewhere) is what the universal construction consumes.
/// Here: the RMW-backed sticky bit drives a leader-election-style usage.
#[test]
fn rmw_sticky_bit_drives_agreement() {
    for seed in 0..10 {
        let n = 4;
        let mut mem: SimMem<()> = SimMem::new(n);
        let sb = RmwStickyBit::new(&mut mem);
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                sb.jam(mem, pid, pid.0 % 2 == 0);
                sb.read(mem, pid)
            },
        );
        out.assert_clean();
        let views: Vec<Tri> = out.results().into_iter().copied().collect();
        assert!(views.iter().all(|&v| v == views[0]), "seed {seed}");
    }
}

/// TAS built from sticky bits is good enough to build a (2-processor)
/// consensus which is good enough to... but not for 3 — while the sticky
/// bit itself handles any n. The boundary in one test.
#[test]
fn the_boundary_between_level_1_and_level_3() {
    use sticky_universality::rmw::impossibility::find_consensus_counterexample;
    use sticky_universality::rmw::TasTwoConsensus;
    use sticky_universality::sticky::consensus::StickyBinaryConsensus;

    // Level 1 at n=2: correct.
    find_consensus_counterexample(2, 500_000, TasTwoConsensus::new)
        .expect("TAS handles two processors");
    // Level 3 at n=3: correct.
    find_consensus_counterexample(3, 2_000_000, StickyBinaryConsensus::new)
        .expect("sticky bit handles three processors");
}

/// Sticky-bit-backed TAS under native contention, reused across
/// generations via reset.
#[test]
fn sticky_tas_generations() {
    let n = 6;
    let mut mem: NativeMem<()> = NativeMem::new();
    let tas = StickyTas::new(&mut mem, n);
    let mem = Arc::new(mem);
    for _generation in 0..5 {
        let winners: usize = std::thread::scope(|s| {
            (0..n)
                .map(|i| {
                    let mem = Arc::clone(&mem);
                    let tas = tas.clone();
                    s.spawn(move || (!tas.test_and_set(&*mem, Pid(i))) as usize)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        tas.reset(&*mem, Pid(0));
    }
}
