//! Theorem 6.6 in its literal form: the bounded universal construction
//! running over a backend whose *only* agreement primitives are sticky
//! **bits** and safe registers — every sticky word realized by the Figure 2
//! sticky-byte algorithm via [`Fig2Mem`].
//!
//! This discharges the one accounting substitution DESIGN.md documents
//! (primitive sticky words for model-checking tractability): the same
//! construction, the same adversaries, zero primitive sticky words.

use std::sync::Arc;
use sticky_universality::prelude::*;
use sticky_universality::sticky::Fig2Mem;

type Payload = CellPayload<CounterSpec>;

/// Width needed for the sticky words of a universal object with this pool:
/// they hold cell indices and pids.
fn width_for(pool: usize, n: usize) -> u32 {
    let max = pool.max(n + 1) as u64;
    64 - max.leading_zeros()
}

#[test]
fn universal_counter_over_literal_sticky_bits_sim() {
    for seed in 0..6 {
        let n = 2;
        let sim: SimMem<Payload> = SimMem::new(n);
        let config = UniversalConfig::for_procs(n);
        let mut mem = Fig2Mem::new(sim.clone(), n, width_for(config.cells, n));
        let obj = Universal::builder(n)
            .config(config)
            .build(&mut mem, CounterSpec::new());
        let rec: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let mem = Arc::new(mem);
        let out = run_uniform(
            &sim,
            Box::new(RandomAdversary::new(seed)),
            RunOptions {
                max_steps: 80_000_000,
            },
            n,
            move |_sim, pid| {
                for _ in 0..2 {
                    rec2.record(&*mem, pid, CounterOp::Inc, || {
                        obj2.apply(&*mem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        out.assert_clean();

        // The headline: no primitive sticky words exist anywhere.
        let (safe, _, sticky_bits, prim_words, _, _) = sim.census();
        assert_eq!(prim_words, 0, "only sticky bits and safe registers");
        assert!(sticky_bits > 0 && safe > 0);

        let h = rec.history();
        assert!(
            sticky_universality::spec::linearize::check(&h, CounterSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

#[test]
fn universal_counter_over_literal_sticky_bits_native() {
    let threads = 3;
    let config = UniversalConfig::for_procs(threads);
    let native: NativeMem<Payload> = NativeMem::new();
    let mut mem = Fig2Mem::new(native, threads, width_for(config.cells, threads));
    let obj = Universal::builder(threads)
        .config(config)
        .build(&mut mem, CounterSpec::new());
    let mem = Arc::new(mem);
    let per = 20;
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let obj = obj.clone();
            s.spawn(move || {
                for _ in 0..per {
                    obj.apply(&*mem, Pid(i), &CounterOp::Inc);
                }
            });
        }
    });
    assert_eq!(
        obj.apply(&*mem, Pid(0), &CounterOp::Read),
        (threads * per) as u64
    );
    assert_eq!(mem.inner().allocation_census().sticky_words, 0);
    // Theorem 6.6's budget, measured literally: O(n² log n) sticky bits.
    let bits = mem.inner().allocation_census().sticky_bits;
    let n = threads as f64;
    let budget = n * n * (config.cells as f64).log2();
    assert!(
        (bits as f64) < 80.0 * budget,
        "{bits} sticky bits vs budget envelope {budget}"
    );
}
