//! The Section 2–3 formalism, wired to actual executions: schedules
//! recorded from the simulator satisfy the paper's structural predicates,
//! and Definition 3.1's linearization check agrees with the operational
//! checker.

use std::sync::Arc;
use sticky_universality::prelude::*;
use sticky_universality::spec::schedule::{
    is_linearization_of, Action, ActionKind, PortId, Schedule,
};

/// Record a run of the universal counter as a §2 schedule (commands and
/// responses on per-processor ports) and check the predicates.
#[test]
fn recorded_executions_are_well_formed_schedules() {
    let n = 3;
    let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
    let obj = Universal::builder(n).build(&mut mem, CounterSpec::new());
    let obj2 = obj.clone();
    // Events: (clock, action)
    type EventLog = std::sync::Mutex<Vec<(u64, Action<String>)>>;
    let events: Arc<EventLog> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let events2 = Arc::clone(&events);
    let out = run_uniform(
        &mem,
        Box::new(RandomAdversary::new(11)),
        RunOptions::default(),
        n,
        move |mem, pid| {
            for _ in 0..2 {
                let t0 = mem.op_invoke(pid);
                events2
                    .lock()
                    .unwrap()
                    .push((t0, Action::command(PortId(pid.0), "Inc".to_string())));
                let resp = obj2.apply(mem, pid, &CounterOp::Inc);
                let t1 = mem.op_return(pid);
                events2
                    .lock()
                    .unwrap()
                    .push((t1, Action::response(PortId(pid.0), format!("{resp}"))));
            }
        },
    );
    out.assert_clean();
    let mut evs = events.lock().unwrap().clone();
    evs.sort_by_key(|(t, _)| *t);
    let schedule: Schedule<String> = evs.into_iter().map(|(_, a)| a).collect();

    assert!(schedule.is_well_formed(), "alternating per port");
    assert!(schedule.is_balanced(), "no pending commands");
    let ops = schedule.operations();
    assert_eq!(ops.len(), 2 * n);
    // Per-port restriction is sequential (one thread = one procedure at a
    // time, Section 2's well-formedness).
    for p in 0..n {
        let restricted = schedule.restrict_to_port(PortId(p));
        assert!(restricted.is_sequential());
        assert_eq!(restricted.len(), 4);
    }
}

/// Definition 3.1 directly: build H and a candidate S by sorting the
/// responses, and confirm `is_linearization_of` accepts exactly the legal
/// orders.
#[test]
fn definition_3_1_on_hand_built_schedules() {
    let h: Schedule<&str> = [
        Action::command(PortId(0), "inc"),
        Action::command(PortId(1), "inc"),
        Action::response(PortId(0), "1"),
        Action::response(PortId(1), "2"),
    ]
    .into_iter()
    .collect();
    // Both sequential orders preserve ≺_H (the ops overlap)...
    let s1: Schedule<&str> = [
        Action::command(PortId(0), "inc"),
        Action::response(PortId(0), "1"),
        Action::command(PortId(1), "inc"),
        Action::response(PortId(1), "2"),
    ]
    .into_iter()
    .collect();
    let s2: Schedule<&str> = [
        Action::command(PortId(1), "inc"),
        Action::response(PortId(1), "2"),
        Action::command(PortId(0), "inc"),
        Action::response(PortId(0), "1"),
    ]
    .into_iter()
    .collect();
    assert!(is_linearization_of(&s1, &h));
    assert!(is_linearization_of(&s2, &h));
    // ...but a sequential witness with mismatched responses is rejected.
    let s_bad: Schedule<&str> = [
        Action::command(PortId(0), "inc"),
        Action::response(PortId(0), "2"),
        Action::command(PortId(1), "inc"),
        Action::response(PortId(1), "1"),
    ]
    .into_iter()
    .collect();
    assert!(!is_linearization_of(&s_bad, &h));
}

/// The two formalizations of atomicity agree: a schedule accepted by
/// Definition 3.1 with a legal witness corresponds to a history the
/// Wing–Gong checker accepts, and vice versa for a stale read.
#[test]
fn schedule_and_history_checkers_agree() {
    use sticky_universality::spec::history::{History, OpRecord};
    use sticky_universality::spec::linearize::check;
    use sticky_universality::spec::specs::{RegisterOp, RegisterResp, RegisterSpec};

    // Overlapping write/read: both agree it linearizes.
    let h_ok: History<_, _> = [
        OpRecord::completed(Pid(0), RegisterOp::Write(1), RegisterResp::Ack, 0, 10),
        OpRecord::completed(Pid(1), RegisterOp::Read, RegisterResp::Value(0), 2, 4),
    ]
    .into_iter()
    .collect();
    assert!(check(&h_ok, RegisterSpec::new()).is_linearizable());

    // Sequential stale read: both reject.
    let h_bad: History<_, _> = [
        OpRecord::completed(Pid(0), RegisterOp::Write(1), RegisterResp::Ack, 0, 1),
        OpRecord::completed(Pid(1), RegisterOp::Read, RegisterResp::Value(0), 5, 6),
    ]
    .into_iter()
    .collect();
    assert!(!check(&h_bad, RegisterSpec::new()).is_linearizable());

    // Schedule-side mirror of the stale read.
    let h_sched: Schedule<&str> = [
        Action::command(PortId(0), "w1"),
        Action::response(PortId(0), "ack"),
        Action::command(PortId(1), "r"),
        Action::response(PortId(1), "0"),
    ]
    .into_iter()
    .collect();
    // The only same-multiset sequential schedules put the read before or
    // after the write; before violates ≺_H, after is the only candidate —
    // and a register semantics check (done by the history checker above)
    // rejects its response. Structurally:
    let s_after: Schedule<&str> = h_sched.clone();
    assert!(is_linearization_of(&s_after, &h_sched));
    let s_before: Schedule<&str> = [
        Action::command(PortId(1), "r"),
        Action::response(PortId(1), "0"),
        Action::command(PortId(0), "w1"),
        Action::response(PortId(0), "ack"),
    ]
    .into_iter()
    .collect();
    assert!(!is_linearization_of(&s_before, &h_sched));
}

/// Schedule kinds sanity over a recorded crashed run: a pending command
/// makes the schedule unbalanced but still well-formed.
#[test]
fn crashed_run_schedules_are_unbalanced() {
    let mut sched: Schedule<&str> = Schedule::new();
    sched.push(Action::command(PortId(0), "inc"));
    sched.push(Action::command(PortId(1), "inc"));
    sched.push(Action::response(PortId(0), "1"));
    // p1 crashed: no response.
    assert!(sched.is_well_formed());
    assert!(!sched.is_balanced());
    let ops = sched.operations();
    assert_eq!(ops.len(), 2);
    assert!(ops[1].response_index.is_none());
    assert_eq!(ActionKind::Command, sched.actions()[1].kind);
}
