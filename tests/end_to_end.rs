//! Cross-crate integration: the full pipeline from the paper's
//! primitives to user-facing objects, exercised through the public façade.

use std::sync::Arc;
use sticky_universality::prelude::*;
use sticky_universality::spec::specs::{
    KvOp, KvResp, SnapshotOp, SnapshotResp, StackOp, StackResp,
};

/// A KV store under the simulator with full linearizability checking.
#[test]
fn kv_store_linearizable_under_adversary() {
    for seed in 0..10 {
        let n = 3;
        let mut mem: SimMem<CellPayload<KvSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, KvSpec::new());
        let rec: Arc<HistoryRecorder<KvOp, KvResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                let k = (pid.0 % 2) as u64; // contended keys
                let ops = [
                    KvOp::Put(k, pid.0 as u64 * 100),
                    KvOp::Get(k),
                    KvOp::Remove(k),
                ];
                for op in ops {
                    rec2.record(mem, pid, op, || obj2.apply(mem, pid, &op));
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert!(
            sticky_universality::spec::linearize::check(&h, KvSpec::new()).is_linearizable(),
            "seed {seed}: {h:?}"
        );
    }
}

/// A wait-free atomic snapshot: scans must be consistent cuts.
#[test]
fn snapshot_scans_are_atomic_cuts() {
    for seed in 0..10 {
        let n = 3;
        let mut mem: SimMem<CellPayload<SnapshotSpec>> = SimMem::new(n);
        let obj = Universal::builder(n).build(&mut mem, SnapshotSpec::new(n));
        let rec: Arc<HistoryRecorder<SnapshotOp, SnapshotResp>> = Arc::new(HistoryRecorder::new());
        let rec2 = Arc::clone(&rec);
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed ^ 0xA11CE)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                for round in 1..3u64 {
                    let up = SnapshotOp::Update {
                        index: pid.0,
                        value: round * 10 + pid.0 as u64,
                    };
                    rec2.record(mem, pid, up.clone(), || obj2.apply(mem, pid, &up));
                    rec2.record(mem, pid, SnapshotOp::Scan, || {
                        obj2.apply(mem, pid, &SnapshotOp::Scan)
                    });
                }
            },
        );
        out.assert_clean();
        let h = rec.history();
        assert!(
            sticky_universality::spec::linearize::check(&h, SnapshotSpec::new(n)).is_linearizable(),
            "seed {seed}"
        );
    }
}

/// The stack wrapper on native threads: push/pop conservation.
#[test]
fn native_stack_conserves_elements() {
    let threads = 4;
    let per = 25;
    let mut mem: NativeMem<CellPayload<StackSpec>> = NativeMem::new();
    let obj = Universal::builder(threads).build(&mut mem, StackSpec::new());
    let stack = WaitFreeStack::new(obj);
    let mem = Arc::new(mem);
    let popped: Vec<u64> = std::thread::scope(|s| {
        (0..threads)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let stack = stack.clone();
                s.spawn(move || {
                    let mut got = Vec::new();
                    for k in 0..per {
                        stack.push(&*mem, Pid(i), (i * 1000 + k) as u64);
                        if k % 2 == 1 {
                            if let Some(v) = stack.pop(&*mem, Pid(i)) {
                                got.push(v);
                            }
                        }
                    }
                    got
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let mut rest = Vec::new();
    while let Some(v) = stack.pop(&*mem, Pid(0)) {
        rest.push(v);
    }
    let mut all: Vec<u64> = popped.into_iter().chain(rest).collect();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), threads * per, "every pushed element popped once");
}

/// StackOp smoke test against responses.
#[test]
fn stack_responses_match_spec() {
    let mut mem: NativeMem<CellPayload<StackSpec>> = NativeMem::new();
    let obj = Universal::builder(1).build(&mut mem, StackSpec::new());
    assert_eq!(obj.apply(&mem, Pid(0), &StackOp::Pop), StackResp::Empty);
    assert_eq!(obj.apply(&mem, Pid(0), &StackOp::Push(5)), StackResp::Ack);
    assert_eq!(obj.apply(&mem, Pid(0), &StackOp::Peek), StackResp::Value(5));
    assert_eq!(obj.apply(&mem, Pid(0), &StackOp::Pop), StackResp::Value(5));
}

/// The paper's full loop: a sticky bit built from *randomized consensus
/// over registers* powers a leader election... observed end to end.
#[test]
fn randomized_sticky_bit_composes_with_helpers() {
    use sticky_universality::sticky::ConsensusStickyBit;
    for seed in 0..5 {
        let n = 3;
        let mut mem: SimMem<()> = SimMem::new(n);
        let cons = RandomizedConsensus::new(&mut mem, n, seed);
        let sb = ConsensusStickyBit::new(&mut mem, cons);
        let sb2 = sb.clone();
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed ^ 77)),
            RunOptions::default(),
            n,
            move |mem, pid| {
                let v = pid.0 % 2 == 0;
                let jam = sb2.jam(mem, pid, v);
                let seen = sb2.read(mem, pid);
                (jam, seen)
            },
        );
        out.assert_clean();
        // All readers agree on the final defined value.
        let values: Vec<Tri> = out.results().iter().map(|(_, t)| *t).collect();
        assert!(values.iter().all(|&t| t == values[0]), "seed {seed}");
        assert!(!values[0].is_undef());
    }
}

/// The prelude exposes everything the README quickstart needs.
#[test]
fn prelude_quickstart_compiles_and_runs() {
    let mut mem = NativeMem::new();
    let queue = WaitFreeQueue::new(Universal::builder(4).build(&mut mem, QueueSpec::new()));
    queue.enqueue(&mem, Pid(0), 42);
    assert_eq!(queue.dequeue(&mem, Pid(1)), Some(42));
    assert_eq!(queue.dequeue(&mem, Pid(2)), None);
    assert_eq!(queue.len(&mem, Pid(3)), 0);
}

/// Two independent universal objects sharing one memory: their registers
/// must not interfere, and each history must linearize on its own.
#[test]
fn two_objects_share_one_memory() {
    for seed in 0..6 {
        let n = 2;
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(n);
        let a = Universal::builder(n).build(&mut mem, CounterSpec::new());
        let b = Universal::builder(n)
            .config(UniversalConfig::for_procs(n).with_fast_paths())
            .build(&mut mem, CounterSpec::new());
        let rec_a: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let rec_b: Arc<HistoryRecorder<CounterOp, u64>> = Arc::new(HistoryRecorder::new());
        let (ra, rb) = (Arc::clone(&rec_a), Arc::clone(&rec_b));
        let (a2, b2) = (a.clone(), b.clone());
        let out = run_uniform(
            &mem,
            Box::new(RandomAdversary::new(seed ^ 0x2222)),
            RunOptions {
                max_steps: 20_000_000,
            },
            n,
            move |mem, pid| {
                for _ in 0..2 {
                    ra.record(mem, pid, CounterOp::Inc, || {
                        a2.apply(mem, pid, &CounterOp::Inc)
                    });
                    rb.record(mem, pid, CounterOp::Inc, || {
                        b2.apply(mem, pid, &CounterOp::Inc)
                    });
                }
            },
        );
        out.assert_clean();
        for (name, rec) in [("a", &rec_a), ("b", &rec_b)] {
            let h = rec.history();
            assert_eq!(h.len(), 4);
            assert!(
                sticky_universality::spec::linearize::check(&h, CounterSpec::new())
                    .is_linearizable(),
                "seed {seed} object {name}: {h:?}"
            );
        }
        assert_eq!(a.apply(&mem, Pid(0), &CounterOp::Read), 4);
        assert_eq!(b.apply(&mem, Pid(0), &CounterOp::Read), 4);
    }
}
