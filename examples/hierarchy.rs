//! The RMW hierarchy, walked level by level (Sections 1 & 7):
//!
//! * registers alone cannot even do 2-consensus — the explorer *finds* the
//!   disagreeing schedule;
//! * one test-and-set bit does 2-consensus but not 3 — the explorer finds
//!   the winner-suspended-before-publishing schedule;
//! * one sticky bit (≡ one 3-valued RMW) does n-consensus — the explorer
//!   exhausts every schedule without finding a counterexample;
//! * and via the universal construction, 3-valued primitives implement a
//!   full CAS register: the hierarchy has collapsed.
//!
//! ```sh
//! cargo run --example hierarchy
//! ```

use std::sync::Arc;
use sticky_universality::prelude::*;
use sticky_universality::rmw::impossibility::{
    find_consensus_counterexample, NaiveRegisterConsensus, TasThreeConsensus,
};
use sticky_universality::rmw::TasTwoConsensus;
use sticky_universality::sticky::consensus::StickyBinaryConsensus;

fn main() {
    println!("level 0: registers, 2 processors");
    match find_consensus_counterexample(2, 100_000, NaiveRegisterConsensus::new) {
        Err(script) => println!(
            "  ✗ disagreement found (schedule of {} decisions) — as Dolev–Dwork–Stockmeyer \
             and Chor–Israeli–Li proved it must be",
            script.len()
        ),
        Ok(n) => unreachable!("registers passed {n} schedules?!"),
    }

    println!("level 1: one test-and-set bit, 2 processors");
    match find_consensus_counterexample(2, 500_000, TasTwoConsensus::new) {
        Ok(schedules) => println!("  ✓ all {schedules} schedules agree"),
        Err(script) => unreachable!("TAS 2-consensus failed: {script:?}"),
    }

    println!("level 1: one test-and-set bit, 3 processors");
    match find_consensus_counterexample(3, 500_000, TasThreeConsensus::new) {
        Err(script) => println!(
            "  ✗ disagreement found (schedule of {} decisions) — consensus number of \
             TAS is exactly 2 (Herlihy, Loui–Abu-Amara)",
            script.len()
        ),
        Ok(n) => unreachable!("TAS 3-consensus passed {n} schedules?!"),
    }

    println!("level 3 (collapse): one sticky bit ≡ 3-valued RMW, 3 processors");
    match find_consensus_counterexample(3, 2_000_000, StickyBinaryConsensus::new) {
        Ok(schedules) => println!("  ✓ all {schedules} schedules agree"),
        Err(script) => unreachable!("sticky-bit consensus failed: {script:?}"),
    }

    println!("\nand therefore (Theorem 6.6): CAS — consensus number ∞ — from sticky bits:");
    let threads = 4;
    let mut mem = NativeMem::new();
    let cas = WaitFreeCas::new(Universal::builder(threads).build(&mut mem, CasSpec::new()));
    let mem = Arc::new(mem);
    let winners: usize = std::thread::scope(|s| {
        (0..threads)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let cas = cas.clone();
                s.spawn(move || cas.cas(&*mem, Pid(i), 0, i as u64 + 1).0 as usize)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    println!(
        "  {threads} threads raced CAS(0 → themselves): exactly {winners} won; \
     register now holds {}",
        cas.read(&*mem, Pid(0))
    );
    assert_eq!(winners, 1);
    println!("\nthe RMW hierarchy collapses at three values. ∎");
}
