//! Drive the sharded object-space service with a synthetic workload.
//!
//! Thin CLI over `sbu_service::loadgen` (the same engine `exp e12` sweeps):
//!
//! ```text
//! cargo run --release --example service_loadgen -- --clients 8 --shards 8
//! cargo run --release --example service_loadgen -- --skew zipf:0.99 --mode open
//! cargo run --release --example service_loadgen -- --ops 50000 --keys 4096 --seed 7
//! ```
//!
//! Prints one human table plus the per-shard breakdown; add `--features
//! obs` for the `service.*` instrument table. The workload is a seeded
//! 75/25 increment/read counter mix — the same mix E12 measures.

use rand::rngs::SmallRng;
use rand::Rng;
use sbu_service::{LoadgenConfig, LoopMode, Skew};
use sbu_spec::specs::{CounterOp, CounterSpec};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: service_loadgen [--clients N] [--workers N] [--shards N (power of two)]\n\
         [--ops N (per client)] [--keys N] [--seed N] [--skew uniform|zipf:THETA]\n\
         [--mode closed|open] [--no-timing]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = LoadgenConfig {
        clients: 4,
        workers: 4,
        shards: 8,
        ops_per_client: 10_000,
        keys: 1024,
        ..Default::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut at = 0;
    while at < args.len() {
        let flag = args[at].as_str();
        if flag == "--no-timing" {
            config.timing = false;
            at += 1;
            continue;
        }
        let Some(value) = args.get(at + 1) else {
            eprintln!("{flag} needs an argument");
            return usage();
        };
        at += 2;
        let num: Option<usize> = value.parse().ok();
        match (flag, num) {
            ("--clients", Some(n)) => config.clients = n,
            ("--workers", Some(n)) => config.workers = n,
            ("--shards", Some(n)) => config.shards = n,
            ("--ops", Some(n)) => config.ops_per_client = n,
            ("--keys", Some(n)) => config.keys = n,
            ("--seed", Some(n)) => config.seed = n as u64,
            ("--mode", _) => match value.as_str() {
                "closed" => config.mode = LoopMode::Closed,
                "open" => config.mode = LoopMode::Open,
                _ => return usage(),
            },
            ("--skew", _) => match value.as_str() {
                "uniform" => config.skew = Skew::Uniform,
                z if z.starts_with("zipf:") => match z["zipf:".len()..].parse() {
                    Ok(theta) => config.skew = Skew::Zipf(theta),
                    Err(_) => return usage(),
                },
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if !config.shards.is_power_of_two() {
        eprintln!("--shards must be a power of two");
        return usage();
    }

    let mix = |rng: &mut SmallRng| {
        if rng.gen_bool(0.25) {
            CounterOp::Read
        } else {
            CounterOp::Inc
        }
    };
    println!("{config:#?}");
    let report = sbu_service::loadgen::run(&config, CounterSpec::new(), mix);
    println!(
        "\ncompleted {} ops in {:.3}s  ({:.0} ops/sec)",
        report.ops, report.elapsed_secs, report.ops_per_sec
    );
    println!(
        "shard imbalance: hottest shard at {:.2}x the balanced share",
        report.imbalance
    );
    println!("\nshard   ops       keys");
    for s in &report.shards {
        println!("{:<7} {:<9} {}", s.shard, s.ops, s.keys);
    }
    if !report.metrics.is_empty() {
        println!("{}", report.metrics.render_table("service instruments"));
    }
    ExitCode::SUCCESS
}
