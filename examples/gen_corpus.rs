//! Regenerate the schedule-corpus regression files in `tests/corpus/`.
//!
//! For every system in the [`sticky_universality::corpus_systems`] registry
//! this explores the schedule tree with partial-order reduction, takes the
//! first counterexample, delta-debugs it to a minimal script, and writes a
//! canonical `.sbu-sched` file. Output is fully deterministic, so running
//! this twice produces byte-identical files — `tests/corpus_replay.rs`
//! relies on that.
//!
//! ```text
//! cargo run --example gen_corpus
//! ```

use std::path::Path;

use sticky_universality::corpus_systems::{self, SYSTEMS};
use sticky_universality::sim::corpus::CORPUS_VERSION;
use sticky_universality::sim::{minimize_script, Explorer, ScheduleCase};

fn describe(system: &str) -> &'static str {
    match system {
        corpus_systems::ATOMIC_INTERMEDIATE_READ => {
            "Minimal schedule where a reader observes the intermediate of two atomic writes."
        }
        corpus_systems::JAM_OBLIVIOUS_BLEND => {
            "Minimal schedule where oblivious (non-helping) jamming blends two sticky-word proposals (the Section 4 straw-man)."
        }
        corpus_systems::NAIVE_JAM_STRANDS_WINNER => {
            "Minimal schedule where a crash mid-jam plus a non-helping loser leaves the sticky word undefined forever."
        }
        corpus_systems::TORN_PERSIST_DROPS_ACKED_JAM => {
            "Minimal schedule where a crash before the jammer's fence tears away a sticky bit another processor already acknowledged reading."
        }
        _ => "Minimized counterexample.",
    }
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    for system in SYSTEMS {
        let explorer = Explorer::new(500_000);
        let episode = |script: &[usize]| corpus_systems::episode(system, script).unwrap();
        let report = explorer.explore_dpor(episode);
        let (script, _) = report
            .failures
            .first()
            .unwrap_or_else(|| panic!("{system}: exploration found no counterexample"))
            .clone();
        let (minimal, message) = minimize_script(&script, episode);
        let case = ScheduleCase {
            version: CORPUS_VERSION,
            name: system.replace('_', "-"),
            system: (*system).to_owned(),
            description: describe(system).to_owned(),
            script: minimal,
            expect_failure: true,
            message,
        };
        let path = case.save(&dir).expect("write corpus file");
        println!("{}: script {:?} -> {}", system, case.script, path.display());
    }
}
