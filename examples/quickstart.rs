//! Quickstart: a wait-free queue and counter from sticky bits, on real
//! threads.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! This is the paper's headline applied: take a plain sequential Rust
//! implementation (`QueueSpec`, `CounterSpec` — "safe implementations" in
//! the paper's sense), run it through the bounded universal construction of
//! Sections 5–6, and get a linearizable, wait-free shared object whose only
//! synchronization primitives are sticky bits (one compare-exchange each)
//! and safe registers.

use std::sync::Arc;
use sticky_universality::prelude::*;

fn main() {
    let threads = 4;
    let ops_per_thread = 100;

    // --- build phase (single-threaded): allocate registers ---------------
    let mut mem = NativeMem::new();
    let queue = WaitFreeQueue::new(Universal::builder(threads).build(&mut mem, QueueSpec::new()));
    let mem = Arc::new(mem);

    // --- run phase: every thread is a "processor" ------------------------
    println!("== wait-free queue: {threads} threads × {ops_per_thread} ops ==");
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let queue = queue.clone();
            s.spawn(move || {
                for k in 0..ops_per_thread {
                    if k % 2 == 0 {
                        queue.enqueue(&*mem, Pid(i), (i * 1000 + k) as u64);
                    } else {
                        let _ = queue.dequeue(&*mem, Pid(i));
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed();

    let mut drained = 0;
    while queue.dequeue(&*mem, Pid(0)).is_some() {
        drained += 1;
    }
    println!(
        "completed {} operations in {elapsed:?}; {drained} items were left queued",
        threads * ops_per_thread
    );

    // --- a counter: concurrent increments are totally ordered ------------
    let mut mem = NativeMem::new();
    let counter =
        WaitFreeCounter::new(Universal::builder(threads).build(&mut mem, CounterSpec::new()));
    let mem = Arc::new(mem);
    std::thread::scope(|s| {
        for i in 0..threads {
            let mem = Arc::clone(&mem);
            let counter = counter.clone();
            s.spawn(move || {
                for _ in 0..ops_per_thread {
                    counter.inc(&*mem, Pid(i));
                }
            });
        }
    });
    let total = counter.read(&*mem, Pid(0));
    println!("== wait-free counter ==");
    println!(
        "total = {total} (expected {}): every increment got a distinct slot",
        threads * ops_per_thread
    );
    assert_eq!(total as usize, threads * ops_per_thread);

    // --- the register-footprint receipt (Theorem 6.6) --------------------
    let census = mem.allocation_census();
    println!("== memory receipt (counter object, n = {threads}) ==");
    println!(
        "sticky bits: {}   sticky words: {}   safe words: {}   data cells: {}",
        census.sticky_bits, census.sticky_words, census.safe_words, census.data_cells
    );
    println!(
        "sticky-bit equivalent (words charged at ⌈log₂ cells⌉ bits): {}",
        census.sticky_bit_equivalent(12)
    );
}
