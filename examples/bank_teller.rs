//! The introduction's motivation, dramatized: tellers process atomic
//! transfers against a shared bank. With a lock, one crashed teller takes
//! the bank down; with the wait-free universal construction, business
//! continues and money is conserved.
//!
//! ```sh
//! cargo run --example bank_teller
//! ```

use sticky_universality::prelude::*;
use sticky_universality::sim::CrashPlan;
use sticky_universality::spec::specs::{BankOp, BankResp};

fn teller_script(pid: Pid, accounts: usize, k: usize) -> Vec<BankOp> {
    (0..k)
        .map(|i| BankOp::Transfer {
            from: (pid.0 + i) % accounts,
            to: (pid.0 + i + 1) % accounts,
            amount: 1 + (i as u64 % 5),
        })
        .collect()
}

fn main() {
    let n = 3;
    let accounts = 4;
    let initial = 100u64;
    let ops = 5;

    // --- wait-free bank: crash a teller mid-transfer ----------------------
    println!("== wait-free bank (bounded universal construction) ==");
    let mut mem: SimMem<CellPayload<BankSpec>> = SimMem::new(n);
    let bank =
        WaitFreeBank::new(Universal::builder(n).build(&mut mem, BankSpec::new(accounts, initial)));
    let bank2 = bank.clone();
    let out = run_uniform(
        &mem,
        Box::new(CrashPlan::new(vec![(Pid(1), 500)], RoundRobin::new())),
        RunOptions::default(),
        n,
        move |mem, pid| {
            let mut done = 0;
            for op in teller_script(pid, accounts, ops) {
                if let BankOp::Transfer { from, to, amount } = op {
                    let _ = bank2.transfer(mem, pid, from, to, amount);
                    done += 1;
                }
            }
            done
        },
    );
    out.assert_clean();
    println!(
        "teller 1 crashed mid-shift; the others completed {:?} transfers each",
        out.results()
    );
    let total = bank.total(&mem, Pid(0));
    println!(
        "vault audit: {total} (expected {}) — money conserved ✓",
        accounts as u64 * initial
    );
    assert_eq!(total, accounts as u64 * initial);

    // --- lock-based bank: same crash, everyone wedges ---------------------
    println!("\n== lock-based bank (the introduction's strawman) ==");
    let mut mem: SimMem<CellPayload<BankSpec>> = SimMem::new(n);
    let bank = SpinLockUniversal::new(&mut mem, BankSpec::new(accounts, initial));
    let out = run_uniform(
        &mem,
        // Under round-robin, teller 0 acquires the lock at step 0;
        // crash it immediately after — inside the critical section.
        Box::new(CrashPlan::new(vec![(Pid(0), 1)], RoundRobin::new())),
        RunOptions { max_steps: 20_000 },
        n,
        move |mem, pid| {
            let mut done = 0;
            for op in teller_script(pid, accounts, ops) {
                match bank.apply::<BankSpec, _>(mem, pid, &op) {
                    BankResp::Ok | BankResp::InsufficientFunds => done += 1,
                    _ => {}
                }
            }
            done
        },
    );
    println!(
        "teller 0 crashed holding the lock; survivors completed {} transfers \
         before the run had to be aborted (they would spin forever)",
        out.results().into_iter().copied().sum::<i32>()
    );
    assert!(out.aborted, "lock-based bank must wedge");
    println!("the bank is closed. ✗");
}
