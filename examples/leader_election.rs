//! Section 4's demo: wait-free leader election by jamming processor ids
//! into a sticky byte — shown twice, on real threads and under the
//! adversarial simulator with a crashing would-be winner.
//!
//! ```sh
//! cargo run --example leader_election
//! ```

use std::sync::Arc;
use sticky_universality::prelude::*;
use sticky_universality::sim::CrashPlan;

fn main() {
    // --- native: 8 threads race ------------------------------------------
    let n = 8;
    let mut mem: NativeMem<()> = NativeMem::new();
    let election = LeaderElection::new(&mut mem, n);
    let mem = Arc::new(mem);
    let winners: Vec<Pid> = std::thread::scope(|s| {
        (0..n)
            .map(|i| {
                let mem = Arc::clone(&mem);
                let election = election.clone();
                s.spawn(move || election.elect(&*mem, Pid(i)))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    println!("== native election, {n} threads ==");
    println!("everyone agrees the leader is {}", winners[0]);
    assert!(winners.iter().all(|&w| w == winners[0]));

    // --- simulated: the adversary crashes whoever it likes ---------------
    println!("== simulated election with a mid-jam crash ==");
    for seed in 0..5u64 {
        let n = 5;
        let mut mem: SimMem<()> = SimMem::new(n);
        let election = LeaderElection::new(&mut mem, n);
        let election2 = election.clone();
        let out = run_uniform(
            &mem,
            // Crash pid 2 early — often in the middle of jamming its id.
            Box::new(CrashPlan::new(
                vec![(Pid(2), 6 + seed * 9)],
                RoundRobin::new(),
            )),
            RunOptions::default(),
            n,
            move |mem, pid| election2.elect(mem, pid),
        );
        out.assert_clean();
        let survivors: Vec<&Pid> = out.results();
        println!(
            "seed {seed}: pid 2 crashed after {} steps; survivors agree on {}",
            out.steps_per_proc[2], survivors[0]
        );
        assert!(survivors.iter().all(|&&w| w == *survivors[0]));
        // The helpers may even have finished the crashed processor's jam
        // and elected *it* — perfectly legal, and the reason the algorithm
        // needs helping at all.
    }

    // --- solo cost: the O(log n) claim ------------------------------------
    println!("== solo election step counts (log-shaped in n) ==");
    for n in [2usize, 4, 8, 16, 32, 64] {
        let mut mem: SimMem<()> = SimMem::new(1);
        // Build for n potential participants; only one shows up.
        let election = LeaderElection::new(&mut mem, n);
        let election2 = election.clone();
        let out = run_uniform(
            &mem,
            Box::new(RoundRobin::new()),
            RunOptions::default(),
            1,
            move |mem, _| election2.elect(mem, Pid(0)),
        );
        println!("n = {n:3}  steps = {}", out.steps);
    }
}
