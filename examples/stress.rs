//! Native multi-thread torture with online linearizability monitoring.
//!
//! Spawns real OS threads over the native backend, drives the paper's
//! objects under contention, and checks every quiescent window of the
//! recorded history online (see `sbu-stress`). Deterministic in the seed
//! up to OS scheduling — and every schedule must linearize.
//!
//! ```text
//! cargo run --release --example stress -- --threads 8 --ops 100000 --seed 42
//! cargo run --release --example stress -- --workload all --ops 20000
//! cargo run --release --example stress -- --inject torn-jam     # exit 0 iff CAUGHT
//! cargo run --release --example stress -- --crash-restart --torn seeded:7 --iters 100
//! cargo run --release --example stress -- --crash-restart --torn lying   # exit 0 iff CAUGHT
//! ```
//!
//! Exits 0 when every window linearized (or, with `--inject`/`--torn
//! lying`, when the monitor caught the injected fault); 1 otherwise.

use std::process::ExitCode;

use sbu_mem::TornPersist;
use sbu_stress::{
    run_crash_restart, run_workload, ContentionProfile, CrashWorkload, Inject, StressConfig,
    Workload,
};

const USAGE: &str = "\
usage: stress [options]
  --threads N        worker threads (default 4)
  --ops N            total operations, split across threads (default 40000)
  --seed N           master seed (default 42)
  --workload W       sticky|jam|election|consensus-sticky|universal-counter|
                     universal-queue|all (default sticky); with
                     --crash-restart: recoverable-jam|recoverable-counter|all
  --objects N        independent object instances (default 4)
  --profile P        hot|spread contention profile (default hot)
  --inject I         none|torn-jam|stale-read fault injection; sticky-only
                     (default none); exit 0 iff the monitor CATCHES the fault
  --crash N          threads that abandon one op (normal mode: in their final
                     epoch; crash-restart mode: per era, default 1)
  --epoch-ops N      ops per thread per epoch (default auto: 64/threads)
  --crash-restart    durable torture: eras split by real crash+restart+recovery
                     over DurableMem, verdict from check_durable
  --torn P           crash-restart torn-persist policy:
                     persist|lose|seeded:N|lying (default persist); with
                     lying, exit 0 iff the durable checker CATCHES the lie
  --eras N           crash-restart eras per run (default 4)
  --iters N          repeat the run with seeds seed..seed+N (default 1)";

fn bail(msg: &str) -> ! {
    eprintln!("stress: {msg}\n{USAGE}");
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T
where
    T::Err: std::fmt::Display,
{
    let v = v.unwrap_or_else(|| bail(&format!("{flag} needs a value")));
    v.parse()
        .unwrap_or_else(|e| bail(&format!("bad value {v:?} for {flag}: {e}")))
}

/// Friendly capacity diagnostic (not a linearizability verdict): printed
/// when quiescent windows outgrew the checker's `MAX_OPS` bound.
fn overflow_note(count: usize, what: &str, remedy: &str) {
    println!(
        "note: {count} {what} exceeded the checker's capacity (MAX_OPS per \
         window) and went UNVERIFIED.\n      This is a configuration limit, \
         not a linearizability violation: {remedy}."
    );
}

fn main() -> ExitCode {
    let mut threads = 4usize;
    let mut total_ops = 40_000usize;
    let mut seed = 42u64;
    let mut workload_arg: Option<String> = None;
    let mut objects = 4usize;
    let mut profile = ContentionProfile::Hot;
    let mut inject = Inject::None;
    let mut crash: Option<usize> = None;
    let mut epoch_ops = 0usize;
    let mut crash_restart = false;
    let mut torn = TornPersist::Persist;
    let mut eras = 4usize;
    let mut iters = 1u64;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threads" => threads = parse(&flag, args.next()),
            "--ops" => total_ops = parse(&flag, args.next()),
            "--seed" => seed = parse(&flag, args.next()),
            "--workload" => {
                workload_arg = Some(
                    args.next()
                        .unwrap_or_else(|| bail("--workload needs a value")),
                )
            }
            "--objects" => objects = parse(&flag, args.next()),
            "--profile" => profile = parse(&flag, args.next()),
            "--inject" => inject = parse(&flag, args.next()),
            "--crash" => crash = Some(parse(&flag, args.next())),
            "--epoch-ops" => epoch_ops = parse(&flag, args.next()),
            "--crash-restart" => crash_restart = true,
            "--torn" => torn = parse(&flag, args.next()),
            "--eras" => eras = parse(&flag, args.next()),
            "--iters" => iters = parse(&flag, args.next()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    if threads == 0 {
        bail("--threads must be at least 1");
    }
    if iters == 0 {
        bail("--iters must be at least 1");
    }

    if crash_restart {
        run_crash_mode(
            threads,
            total_ops,
            seed,
            workload_arg,
            objects,
            profile,
            crash,
            torn,
            eras,
            iters,
        )
    } else {
        run_normal_mode(
            threads,
            total_ops,
            seed,
            workload_arg,
            objects,
            profile,
            inject,
            crash.unwrap_or(0),
            epoch_ops,
            iters,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn run_normal_mode(
    threads: usize,
    total_ops: usize,
    seed: u64,
    workload_arg: Option<String>,
    objects: usize,
    profile: ContentionProfile,
    inject: Inject,
    crash: usize,
    epoch_ops: usize,
    iters: u64,
) -> ExitCode {
    let workloads: Vec<Workload> = match workload_arg.as_deref() {
        None => vec![Workload::Sticky],
        Some("all") => Workload::all().to_vec(),
        Some(v) => vec![v.parse::<Workload>().unwrap_or_else(|e| bail(&e))],
    };
    if inject != Inject::None && workloads.iter().any(|w| *w != Workload::Sticky) {
        bail("--inject only applies to the sticky workload");
    }

    let mut cfg = StressConfig::new(threads, total_ops.div_ceil(threads), seed);
    cfg.objects = objects.max(1);
    cfg.profile = profile;
    cfg.crash_threads = crash.min(threads);
    cfg.epoch_ops = epoch_ops;

    let mut ok = true;
    for iter in 0..iters {
        cfg.seed = seed + iter;
        for w in &workloads {
            println!(
                "== workload {w} ({} threads × {} ops, seed {}, inject {inject}) ==",
                cfg.threads, cfg.ops_per_thread, cfg.seed
            );
            let report = run_workload(*w, &cfg, inject);
            println!("{report}");
            if report.overflow_windows > 0 {
                overflow_note(
                    report.overflow_windows,
                    "quiescent window(s)",
                    "rerun with a smaller --epoch-ops (or fewer --crash \
                     threads, whose pending ops grow windows)",
                );
                ok = false;
            }
            if inject == Inject::None {
                if !report.violations.is_empty() {
                    ok = false;
                }
            } else if report.all_linearizable() {
                println!("INJECTED FAULT NOT CAUGHT");
                ok = false;
            } else {
                println!("INJECTED FAULT CAUGHT");
            }
            println!();
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[allow(clippy::too_many_arguments)]
fn run_crash_mode(
    threads: usize,
    total_ops: usize,
    seed: u64,
    workload_arg: Option<String>,
    objects: usize,
    profile: ContentionProfile,
    crash: Option<usize>,
    torn: TornPersist,
    eras: usize,
    iters: u64,
) -> ExitCode {
    let workloads: Vec<CrashWorkload> = match workload_arg.as_deref() {
        None => vec![CrashWorkload::RecoverableJam],
        Some("all") => CrashWorkload::all().to_vec(),
        Some(v) => vec![v.parse::<CrashWorkload>().unwrap_or_else(|e| bail(&e))],
    };
    if torn == TornPersist::Lying && workloads.contains(&CrashWorkload::RecoverableCounter) {
        bail("--torn lying only applies to the recoverable-jam workload");
    }

    // Crash-restart sizing: `--ops` is the total across threads and eras;
    // keep per-era bursts small enough for check_durable's windows.
    let mut cfg = StressConfig::new(threads, (total_ops.div_ceil(threads)).min(96), seed);
    cfg.objects = objects.max(1);
    cfg.profile = profile;
    cfg.crash_threads = crash.unwrap_or(1).clamp(1, threads);

    let mut ok = true;
    for iter in 0..iters {
        cfg.seed = seed + iter;
        for w in &workloads {
            println!(
                "== crash-restart {w} ({} threads × {} ops, {eras} eras, \
                 seed {}, torn {torn}) ==",
                cfg.threads, cfg.ops_per_thread, cfg.seed
            );
            let report = run_crash_restart(*w, &cfg, eras, torn);
            println!("{report}");
            if report.unverified_objects > 0 {
                overflow_note(
                    report.unverified_objects,
                    "object histor(y/ies)",
                    "rerun with fewer --ops or more --eras so each era's \
                     contention burst stays checkable",
                );
                ok = false;
            }
            if torn == TornPersist::Lying {
                if report.violations.is_empty() {
                    println!("LYING TORN-PERSIST NOT CAUGHT");
                    ok = false;
                } else {
                    println!("LYING TORN-PERSIST CAUGHT");
                }
            } else if !report.violations.is_empty() {
                ok = false;
            }
            println!();
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
