//! Native multi-thread torture with online linearizability monitoring.
//!
//! Spawns real OS threads over the native backend, drives the paper's
//! objects under contention, and checks every quiescent window of the
//! recorded history online (see `sbu-stress`). Deterministic in the seed
//! up to OS scheduling — and every schedule must linearize.
//!
//! ```text
//! cargo run --release --example stress -- --threads 8 --ops 100000 --seed 42
//! cargo run --release --example stress -- --workload all --ops 20000
//! cargo run --release --example stress -- --inject torn-jam     # exit 0 iff CAUGHT
//! cargo run --release --example stress -- --crash-restart --torn seeded:7 --iters 100
//! cargo run --release --example stress -- --crash-restart --torn lying   # exit 0 iff CAUGHT
//! ```
//!
//! With `--features obs`, each run also prints the observability
//! registry's metrics table, and the fault-injection verdict lines cite
//! the instrument counts (lies injected vs. violations caught).
//!
//! Exit codes are typed (`sbu_stress::ExitStatus`, documented in `--help`):
//! 0 clean / fault caught, 1 violation under an honest configuration,
//! 2 usage error, 3 injected fault NOT caught, 4 capacity overflow.

use std::process::ExitCode;

use sbu_mem::TornPersist;
use sbu_obs::Snapshot;
use sbu_stress::{
    run_crash_restart, run_workload, CrashWorkload, ExitAccumulator, ExitStatus, Inject, Options,
    OptionsError, StressConfig, Workload, USAGE,
};

fn bail(msg: &str) -> ! {
    eprintln!("stress: {msg}\n{USAGE}");
    std::process::exit(2)
}

/// Friendly capacity diagnostic (not a linearizability verdict): printed
/// when quiescent windows outgrew the checker's `MAX_OPS` bound.
fn overflow_note(count: usize, what: &str, remedy: &str) {
    println!(
        "note: {count} {what} exceeded the checker's capacity (MAX_OPS per \
         window) and went UNVERIFIED.\n      This is a configuration limit, \
         not a linearizability violation: {remedy}."
    );
}

/// Print the run's aggregated instruments, if any were recorded (requires
/// the `obs` cargo feature; detached registries snapshot empty).
fn print_metrics(metrics: &Snapshot) {
    if !metrics.is_empty() {
        println!("{}", metrics.render_table("metrics"));
    }
}

/// Format the injected-count clause of a verdict line. Only a live
/// registry (`--features obs`) has a truthful count; a dark build omits
/// the clause instead of reporting a false zero.
fn cite(count: u64, what: &str) -> String {
    if sbu_obs::enabled() {
        format!("{count} {what} injected, ")
    } else {
        String::new()
    }
}

fn main() -> ExitCode {
    let opts = match Options::parse(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(OptionsError::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => bail(&e.to_string()),
    };
    if opts.crash_restart {
        run_crash_mode(&opts)
    } else {
        run_normal_mode(&opts)
    }
}

fn run_normal_mode(opts: &Options) -> ExitCode {
    let workloads: Vec<Workload> = match opts.workload.as_deref() {
        None => vec![Workload::Sticky],
        Some("all") => Workload::all().to_vec(),
        Some(v) => vec![v.parse::<Workload>().unwrap_or_else(|e| bail(&e))],
    };
    if opts.inject != Inject::None && workloads.iter().any(|w| *w != Workload::Sticky) {
        bail("--inject only applies to the sticky workload");
    }

    let mut cfg = StressConfig::new(
        opts.threads,
        opts.total_ops.div_ceil(opts.threads),
        opts.seed,
    );
    cfg.objects = opts.objects.max(1);
    cfg.profile = opts.profile;
    cfg.crash_threads = opts.crash.unwrap_or(0).min(opts.threads);
    cfg.epoch_ops = opts.epoch_ops;

    let mut exit = ExitAccumulator::new();
    for iter in 0..opts.iters {
        cfg.seed = opts.seed + iter;
        for w in &workloads {
            println!(
                "== workload {w} ({} threads × {} ops, seed {}, inject {}) ==",
                cfg.threads, cfg.ops_per_thread, cfg.seed, opts.inject
            );
            let report = run_workload(*w, &cfg, opts.inject);
            println!("{report}");
            print_metrics(&report.metrics);
            if report.overflow_windows > 0 {
                overflow_note(
                    report.overflow_windows,
                    "quiescent window(s)",
                    "rerun with a smaller --epoch-ops (or fewer --crash \
                     threads, whose pending ops grow windows)",
                );
                exit.record(ExitStatus::Unverified);
            }
            if opts.inject == Inject::None {
                if !report.violations.is_empty() {
                    exit.record(ExitStatus::Violation);
                }
            } else {
                // Cite the registry: lies the injector actually told vs.
                // violations the monitor reported. The verdict itself never
                // depends on instrumentation; without the `obs` feature the
                // count is omitted rather than reported as a false zero.
                let cited = cite(report.metrics.counter("inject.lies_told"), "lies");
                let caught = report.violations.len();
                if report.all_linearizable() {
                    println!("INJECTED FAULT NOT CAUGHT ({cited}0 caught)");
                    exit.record(ExitStatus::NotCaught);
                } else {
                    println!("INJECTED FAULT CAUGHT ({cited}{caught} violation(s) reported)");
                }
            }
            println!();
        }
    }
    ExitCode::from(exit.code())
}

fn run_crash_mode(opts: &Options) -> ExitCode {
    let workloads: Vec<CrashWorkload> = match opts.workload.as_deref() {
        None => vec![CrashWorkload::RecoverableJam],
        Some("all") => CrashWorkload::all().to_vec(),
        Some(v) => vec![v.parse::<CrashWorkload>().unwrap_or_else(|e| bail(&e))],
    };
    if opts.torn == TornPersist::Lying && workloads.contains(&CrashWorkload::RecoverableCounter) {
        bail("--torn lying only applies to the recoverable-jam workload");
    }

    // Crash-restart sizing: `--ops` is the total across threads and eras;
    // keep per-era bursts small enough for check_durable's windows.
    let mut cfg = StressConfig::new(
        opts.threads,
        opts.total_ops.div_ceil(opts.threads).min(96),
        opts.seed,
    );
    cfg.objects = opts.objects.max(1);
    cfg.profile = opts.profile;
    cfg.crash_threads = opts.crash.unwrap_or(1).clamp(1, opts.threads);

    let mut exit = ExitAccumulator::new();
    for iter in 0..opts.iters {
        cfg.seed = opts.seed + iter;
        for w in &workloads {
            println!(
                "== crash-restart {w} ({} threads × {} ops, {} eras, \
                 seed {}, torn {}) ==",
                cfg.threads, cfg.ops_per_thread, opts.eras, cfg.seed, opts.torn
            );
            let report = run_crash_restart(*w, &cfg, opts.eras, opts.torn);
            println!("{report}");
            print_metrics(&report.metrics);
            if report.unverified_objects > 0 {
                overflow_note(
                    report.unverified_objects,
                    "object histor(y/ies)",
                    "rerun with fewer --ops or more --eras so each era's \
                     contention burst stays checkable",
                );
                exit.record(ExitStatus::Unverified);
            }
            if opts.torn == TornPersist::Lying {
                // Cite the registry: acknowledged jams the lying policy
                // rolled back vs. violations the durable checker reported
                // (omitted without the `obs` feature).
                let cited = cite(report.metrics.counter("mem.lying_rollbacks"), "rollbacks");
                let caught = report.violations.len();
                if report.violations.is_empty() {
                    println!("LYING TORN-PERSIST NOT CAUGHT ({cited}0 caught)");
                    exit.record(ExitStatus::NotCaught);
                } else {
                    println!("LYING TORN-PERSIST CAUGHT ({cited}{caught} violation(s) reported)");
                }
            } else if !report.violations.is_empty() {
                exit.record(ExitStatus::Violation);
            }
            println!();
        }
    }
    ExitCode::from(exit.code())
}
