//! Native multi-thread torture with online linearizability monitoring.
//!
//! Spawns real OS threads over the native backend, drives the paper's
//! objects under contention, and checks every quiescent window of the
//! recorded history online (see `sbu-stress`). Deterministic in the seed
//! up to OS scheduling — and every schedule must linearize.
//!
//! ```text
//! cargo run --release --example stress -- --threads 8 --ops 100000 --seed 42
//! cargo run --release --example stress -- --workload all --ops 20000
//! cargo run --release --example stress -- --inject torn-jam     # exit 0 iff CAUGHT
//! ```
//!
//! Exits 0 when every window linearized (or, with `--inject`, when the
//! monitor caught the injected fault); 1 otherwise.

use std::process::ExitCode;

use sbu_stress::{run_workload, ContentionProfile, Inject, StressConfig, Workload};

const USAGE: &str = "\
usage: stress [options]
  --threads N        worker threads (default 4)
  --ops N            total operations, split across threads (default 40000)
  --seed N           master seed (default 42)
  --workload W       sticky|jam|election|consensus-sticky|universal-counter|
                     universal-queue|all (default sticky)
  --objects N        independent object instances (default 4)
  --profile P        hot|spread contention profile (default hot)
  --inject I         none|torn-jam|stale-read fault injection; sticky-only
                     (default none); exit 0 iff the monitor CATCHES the fault
  --crash N          threads that abandon one op in their final epoch
  --epoch-ops N      ops per thread per epoch (default auto: 64/threads)";

fn bail(msg: &str) -> ! {
    eprintln!("stress: {msg}\n{USAGE}");
    std::process::exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T
where
    T::Err: std::fmt::Display,
{
    let v = v.unwrap_or_else(|| bail(&format!("{flag} needs a value")));
    v.parse()
        .unwrap_or_else(|e| bail(&format!("bad value {v:?} for {flag}: {e}")))
}

fn main() -> ExitCode {
    let mut threads = 4usize;
    let mut total_ops = 40_000usize;
    let mut seed = 42u64;
    let mut workloads = vec![Workload::Sticky];
    let mut objects = 4usize;
    let mut profile = ContentionProfile::Hot;
    let mut inject = Inject::None;
    let mut crash = 0usize;
    let mut epoch_ops = 0usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--threads" => threads = parse(&flag, args.next()),
            "--ops" => total_ops = parse(&flag, args.next()),
            "--seed" => seed = parse(&flag, args.next()),
            "--workload" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| bail("--workload needs a value"));
                workloads = if v == "all" {
                    Workload::all().to_vec()
                } else {
                    vec![v.parse::<Workload>().unwrap_or_else(|e| bail(&e))]
                };
            }
            "--objects" => objects = parse(&flag, args.next()),
            "--profile" => profile = parse(&flag, args.next()),
            "--inject" => inject = parse(&flag, args.next()),
            "--crash" => crash = parse(&flag, args.next()),
            "--epoch-ops" => epoch_ops = parse(&flag, args.next()),
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => bail(&format!("unknown flag {other:?}")),
        }
    }
    if threads == 0 {
        bail("--threads must be at least 1");
    }
    if inject != Inject::None && workloads.iter().any(|w| *w != Workload::Sticky) {
        bail("--inject only applies to the sticky workload");
    }

    let mut cfg = StressConfig::new(threads, total_ops.div_ceil(threads), seed);
    cfg.objects = objects.max(1);
    cfg.profile = profile;
    cfg.crash_threads = crash.min(threads);
    cfg.epoch_ops = epoch_ops;

    let mut ok = true;
    for w in &workloads {
        println!(
            "== workload {w} ({} threads × {} ops, seed {seed}, inject {inject}) ==",
            cfg.threads, cfg.ops_per_thread
        );
        let report = run_workload(*w, &cfg, inject);
        println!("{report}");
        if inject == Inject::None {
            if !report.all_linearizable() {
                ok = false;
            }
        } else if report.all_linearizable() {
            println!("INJECTED FAULT NOT CAUGHT");
            ok = false;
        } else {
            println!("INJECTED FAULT CAUGHT");
        }
        println!();
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
