//! The schedule explorer as a user-facing tool: exhaustively model-check a
//! tiny lock-free protocol of your own, then watch the explorer refute a
//! subtly broken variant.
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```
//!
//! The conductor makes every run a deterministic function of a decision
//! script, so "all interleavings" is just "all scripts" — the same engine
//! that validates this repository's own algorithms (and finds the FLP-style
//! counterexamples in `sbu-rmw`).

use sticky_universality::prelude::*;
use sticky_universality::sim::EpisodeResult;

fn main() {
    // ------------------------------------------------------------------
    // A correct micro-protocol: two processors exchange maxima through a
    // sticky word (one-shot agreement on the larger input).
    // ------------------------------------------------------------------
    println!("checking: max-exchange via one sticky word, 2 procs, all schedules…");
    let explorer = Explorer::new(100_000);
    let report = explorer.explore(|script| {
        let mut mem: SimMem<()> = SimMem::new(2);
        let mine = [mem.alloc_atomic(3), mem.alloc_atomic(7)];
        let agreed = mem.alloc_sticky_word();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            2,
            move |mem, pid| {
                let my = mem.atomic_read(pid, mine[pid.0]);
                let other = mem.atomic_read(pid, mine[1 - pid.0]);
                mem.sticky_word_jam(pid, agreed, my.max(other));
                mem.sticky_word_read(pid, agreed).unwrap()
            },
        );
        let vals: Vec<u64> = out.results().into_iter().copied().collect();
        let verdict = if vals.iter().all(|&v| v == 7) {
            Ok(())
        } else {
            Err(format!("non-max or disagreeing outputs: {vals:?}"))
        };
        EpisodeResult::from_outcome(&out, verdict)
    });
    match report.failures.first() {
        None => println!(
            "  ✓ {} schedules, all agree on the maximum (tree exhausted: {})",
            report.schedules, report.complete
        ),
        Some((script, msg)) => println!("  ✗ {msg} under {script:?}"),
    }

    // ------------------------------------------------------------------
    // A broken variant: write the max into a plain atomic register instead
    // of jamming a sticky word. Last writer wins — but both compute the
    // same max here, so where's the bug? Make the inputs race too: each
    // processor *increments* the shared register by its input. Lost
    // updates appear under exactly the schedules you'd expect.
    // ------------------------------------------------------------------
    println!("checking: read-then-write increment (no RMW), 2 procs…");
    let report = Explorer::new(100_000).explore(|script| {
        let mut mem: SimMem<()> = SimMem::new(2);
        let total = mem.alloc_atomic(0);
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            2,
            move |mem, pid| {
                // The classic lost-update bug: read, compute, write.
                let cur = mem.atomic_read(pid, total);
                mem.atomic_write(pid, total, cur + 1);
            },
        );
        let final_total = mem.atomic_read(Pid(0), total);
        let verdict = if final_total == 2 {
            Ok(())
        } else {
            Err(format!("lost update: total = {final_total}"))
        };
        EpisodeResult::from_outcome(&out, verdict)
    });
    match report.failures.first() {
        Some((script, msg)) => println!(
            "  ✗ {msg} — counterexample schedule {script:?} (after {} schedules)",
            report.schedules
        ),
        None => println!("  ✓ unexpectedly correct?!"),
    }

    // ------------------------------------------------------------------
    // The fix, checked exhaustively: the same increments through the
    // wait-free universal counter.
    // ------------------------------------------------------------------
    println!("checking: the same increments through the universal counter…");
    let report = Explorer::new(4_000).explore(|script| {
        let mut mem: SimMem<CellPayload<CounterSpec>> = SimMem::new(2);
        let obj = Universal::builder(2).build(&mut mem, CounterSpec::new());
        let obj2 = obj.clone();
        let out = run_uniform(
            &mem,
            Box::new(Scripted::new(script.to_vec())),
            RunOptions::default(),
            2,
            move |mem, pid| obj2.apply(mem, pid, &CounterOp::Inc),
        );
        let final_total = obj.apply(&mem, Pid(0), &CounterOp::Read);
        let verdict = if final_total == 2 {
            Ok(())
        } else {
            Err(format!("lost update: total = {final_total}"))
        };
        EpisodeResult::from_outcome(&out, verdict)
    });
    // The universal construction's schedule tree is enormous; a bounded-
    // exhaustive prefix is what fits in an example.
    match report.failures.first() {
        None => println!(
            "  ✓ no lost update in the first {} schedules (DFS order)",
            report.schedules
        ),
        Some((script, msg)) => println!("  ✗ {msg} under {script:?}"),
    }
}
