//! Run the deterministic scenario matrix (see `sbu-scenario`).
//!
//! Thin wrapper over the same driver `exp scenarios` uses:
//!
//! ```text
//! cargo run --release --example scenario_matrix -- --list
//! cargo run --release --example scenario_matrix -- --scenario steady-state
//! cargo run --release --example scenario_matrix -- --out target/scenarios
//! cargo run --release --example scenario_matrix -- --compare base.json cur.json
//! ```
//!
//! Exit codes are the driver's (see `--help`): 0 = every cell matched its
//! expected verdict / no coverage regression; 1 = a cell defied
//! expectations or a regression was found; 2 = usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(sbu_scenario::cli::run(&args).clamp(0, u8::MAX as i32) as u8)
}
