#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from a captured `exp all` run.

Usage:
    cargo run --release -p sbu-bench --bin exp -- all > /tmp/exp_all.txt
    python3 scripts/gen_experiments_md.py /tmp/exp_all.txt
"""
import sys

raw = open(sys.argv[1]).read().splitlines()
start = next(i for i, l in enumerate(raw) if l.startswith("E1a"))
tables = "\n".join(raw[start:])

doc = f"""# EXPERIMENTS — paper claims vs. measured

The paper is a theory paper; its "evaluation" consists of complexity
theorems (Theorem 6.6, §6.4), algorithm figures (Figs 2, 4–8), and the
hierarchy claims of §1/§7. This file records, claim by claim, what the
paper states and what this implementation measures. Regenerate with:

```sh
cargo run --release -p sbu-bench --bin exp -- all > /tmp/exp_all.txt
python3 scripts/gen_experiments_md.py /tmp/exp_all.txt
```

Step counts are the deterministic conductor's scheduling points (one per
atomic/sticky operation, two per safe-register or data-cell operation), so
they are exactly reproducible; wall-clock numbers (E8, E10, and the timing columns of E9) vary by machine.
Absolute constants are not expected to match a 1989 pencil-and-paper cost
model — the *shapes* (growth rates, separations, who wins) are the
reproduction target, and all of them hold.

## Summary of claims

| Exp | Paper claim (location) | Measured result | Verdict |
|-----|------------------------|-----------------|---------|
| E1a | Fig 2's sticky byte is atomic & wait-free (§4) | 100% agreement + validity over 1080 adversarial runs with crashes | ✓ |
| E1b | sticky-byte access is O(ℓ) (§4) | solo steps = ℓ + 4, exactly linear | ✓ |
| E1c | wait-free under contention (§4) | worst per-proc steps grow ~linearly in n (helping scans), bounded always | ✓ |
| E1d | the naive jams are broken (§4's counterexample) | oblivious jam blends ~22% of runs; early-return strands ⊥ in ~5%; Fig 2: 0% / 0% | ✓ |
| E2a | leader election in O(log n) (§4) | solo steps = log₂n + 4 | ✓ |
| E2b | election is wait-free & agreed under contention | unique agreed leader in all runs; bounded steps | ✓ |
| E3a | Θ(n²) cells, Θ(n² log n) sticky bits (Thm 6.6) | pool/n² → ≈5, sticky-bit-equivalent/(n²·log n) bounded & decreasing | ✓ |
| E3b | Herlihy's construction needs unbounded memory (§5) | exactly 1 cell consumed per operation, forever | ✓ |
| E4a | solo access O(T + n² log n) (§6.4) | steps/op/n² decreasing toward a constant (pool scans dominate) | ✓ |
| E4b | contended worst case O(nT + n³ log n) (§6.4) | worst steps/op/n³ roughly flat (≈200–290) | ✓ |
| E4c | §7 open problem: can the time be improved? | locality fast paths: 2.6–3.6× solo speedup, growing with n, correctness unchanged | extension |
| E5 | locks stall at a crashed processor; wait-free doesn't (§1) | lock-based: survivors complete 0 ops, wedged; all three wait-free constructions: all 12 survivor ops complete | ✓ |
| E6 | registers < TAS < 3-valued RMW = universal (§1, §7) | explorer finds counterexample schedules exactly where theory says, exhausts the tree everywhere else | ✓ |
| E7 | randomized consensus from registers terminates fast (§1, refs \\[1–4\\]) | 100% agreement over 600 runs; mean ≈1.03 rounds, max 2 | ✓ |
| E8 | (implicit) the construction is practical | wait-freedom costs ~10–1000× raw throughput vs a lock — progress guarantees, not speed | reported |
| E9 | (tooling) one schedule per Mazurkiewicz trace suffices for model checking | DPOR exhausts the Fig 2 jam trees in ~52× fewer schedules (with and without crashes), losing no counterexamples | ✓ |
| E10 | (tooling) Definition 3.1 can be checked *online* on real-thread histories | the `sbu-stress` frontier-set monitor verifies every quiescent window while 1–8 threads run at ~10⁵–10⁶ ops/s; seeded torn-jam/stale-read lies in the backend are always caught | ✓ |
| E11 | (robustness) crash–restart durability is a constant-factor tax | recoverable jam pays ~4–7× over the plain `JamWord` (announce + per-bit fences); the durable universal counter is scan-dominated (≈1×); post-crash recovery costs sub-µs per jam object and single-digit µs per counter | reported |

Beyond the harness, three claims are discharged as *tests* rather than
tables:

* **Theorem 6.6, literally** — `tests/literal_theorem_6_6.rs` runs the full
  bounded construction over `Fig2Mem`, where every sticky word is ⌈log₂⌉
  genuine sticky bits: zero primitive sticky words in the census.
* **"Universality of consensus"** (the title) —
  `crates/core/tests/consensus_universal.rs` runs `ConsensusUniversal` with
  an arbitrary consensus plugged per cell; instantiated with
  `BitwiseConsensus<RandomizedConsensus>` the census contains **no sticky or
  TAS primitives at all**: the randomized wait-free universal object from
  registers only, exactly the introduction's corollary.
* **Definition 3.2 wait-freedom** — solo-termination under total starvation
  and survivor-completion under crashes, `crates/core/tests/wait_freedom.rs`.

Notes on E4: the measured dominant term is the full-pool FIND-HEAD/GFC
scans, Θ(pool) = Θ(n²) register operations per attempt; the paper's extra
log n factor comes from counting each multi-bit sticky access as ⌈log₂⌉
bit operations, which is exactly the accounting `Fig2Mem` realizes
operationally.

Notes on E8: the bounded construction's full-pool scans make it the
slowest of the three by design; the unbounded baseline (no reclamation
machinery) sits in between. The paper's value proposition is the E5
column, not the E8 one. The archived numbers were collected inside a
single-core container, so the multi-thread rows measure OS scheduling as
much as algorithmic cost; rerun on real hardware for meaningful scaling
curves.

Notes on E10: both columns run under the `sbu-stress` torture harness with
the online monitor live — the throughput figures are for *verified* ops
(every quiescent window of the recorded history checked concurrently), not
raw loops, so they are not comparable to E8. The native column is the
wait-free Figure 2 `JamWord`; the baseline wraps the same sequential spec
in the spin-lock strawman. The single-core caveat of E8 applies here too,
and on one core a spin lock is nearly free — the separation the paper cares
about is E5's (a crashed lock holder wedges everyone), not raw speed.

Notes on E11: "plain" columns run the non-durable objects on the bare
native backend; "recoverable" columns run the crash-safe protocols over
`DurableMem`, which tracks every persistent-object write until fenced. The
jam tax is real algorithmic work (a durable announcement plus a fence per
jammed bit); the counter's tax is invisible because the universal
construction's full-pool scans dominate either way. Recovery sweeps are
one-off restart costs, not per-operation costs. Single-core container
caveats from E8 apply.

## Measured tables

```text
{tables}
```

## Reproduction inventory

| Paper artifact | Where implemented | Where verified |
|----------------|-------------------|----------------|
| Def 3.1 atomicity (= linearizability) | `sbu-spec::linearize` | property tests vs brute force (`crates/spec/tests/proptest_linearize.rs`) |
| Def 3.1 on real-thread histories, online | `sbu-stress` (windowed frontier-set monitor over `sbu-spec::linearize`) | torture smokes incl. injected-fault catches (`crates/stress/tests/torture_smoke.rs`); CI stress smoke; E10 |
| Def 3.2 wait-freedom | step accounting in `sbu-sim` | `crates/core/tests/wait_freedom.rs` |
| §2 schedules (well-formed/balanced/sequential, ≺_H) | `sbu-spec::schedule` | `tests/formalism.rs` |
| Def 4.1 Sticky Bit | `sbu-mem` (native CAS + simulated) | `sbu-mem` unit tests; `StickySpec` linearizability checks; backend conformance suite |
| Fig 2 sticky byte + helping | `sbu-sticky::jam_word` | exhaustive exploration (2 procs × all schedules × ≤1 crash), proptest scripts, native stress |
| §4 leader election | `sbu-sticky::election` | exhaustive (2 procs), bounded-exhaustive (3), fuzz (5, crashes) |
| §4 ASB from initializable consensus + 2 safe bits | `sbu-sticky::from_consensus` | exhaustive linearizability vs `StickySpec` |
| §1 randomized corollary | `sbu-sticky::randomized` + `BitwiseConsensus` + `ConsensusUniversal` | E7; adopt–commit explored exhaustively; registers-only universal queue test |
| §5 list construction + freeing bits | `sbu-core::bounded` (apply loop) | fuzz + linearizability with crashes & hostile reads; bounded-exhaustive DFS prefixes |
| Fig 3 cell layout | `sbu-core::bounded::cell` | pool-forensics invariants (`protocol_units.rs`) |
| Figs 4–5 GRAB/RELEASE/INIT | `sbu-core::bounded::sync` | reclamation tests; flush-overlap monitoring (0 violations everywhere); ≤3-grabs debug assertion (Thm 6.6's accounting) |
| Fig 6 GFC | `sbu-core::bounded::gfc` | reuse-forever tests, crash-leak bounds, Lemma 6.3 observations |
| Figs 7–8 FIND-HEAD/APPEND | `sbu-core::bounded::list` | all linearizability suites |
| Thm 6.6 (space) | — | E3a; `tests/literal_theorem_6_6.rs` (literal sticky bits) |
| §6.4 (time) | — | E4 |
| §7 hierarchy collapse | `sbu-rmw` + `sbu-core` CAS object | E6; `tests/collapse.rs` |
| §7 open problem (efficiency) | `UniversalConfig::with_fast_paths` | E4c ablation |
| crash–restart durability (§3 crashes, modern persistency reading) | `sbu-mem::durable` (`DurableMem`, torn-persist policies), `sbu-sticky::recoverable`, `Universal::recover` | durable-linearizability checker (`sbu-spec::linearize::check_durable` + its unit suite); DPOR crash exploration (`crates/sticky/tests/dpor_recovery.rs`); native crash–restart torture incl. lying-hardware catches (`crates/stress/tests/crash_restart.rs`, CI smoke); corpus `torn-persist-drops-acked-jam`; E11 |
"""
open("EXPERIMENTS.md", "w").write(doc)
print(f"EXPERIMENTS.md written ({len(doc)} bytes)")
