#!/usr/bin/env bash
# The full local/CI gate, runnable fully offline (all dependencies are
# vendored; `--offline` is passed to every cargo invocation).
#
#   scripts/ci.sh          # fmt, clippy -D warnings, build, tests, corpus replay
#   scripts/ci.sh --full   # additionally runs the #[ignore]d deep-exploration tests
#
# Deterministic by default: the vendored proptest draws from a fixed seed.
# Override with SBU_PROPTEST_SEED=<u64> to explore a different stream, and
# SBU_PROPTEST_CASES=<n> to scale property-test case counts.

set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
fi

step() { printf '\n==> %s\n' "$*"; }

step "rustfmt (check only)"
cargo fmt --all --check

step "clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

step "release build (both feature configs: obs off is the default, obs on must build too)"
cargo build --release --offline
cargo build --release --offline --features obs

step "workspace tests"
cargo test --quiet --workspace --offline

step "obs-enabled tests (instrumented crates; same suites, metrics live)"
cargo test --quiet --offline --features obs \
    -p sbu-obs -p sbu-mem -p sbu-sticky -p sbu-core -p sbu-stress -p sbu-scenario \
    -p sbu-service -p sbu-bench
cargo test --quiet --offline --features obs

step "schedule-corpus replay"
cargo test --quiet --offline --test corpus_replay

step "corpus regeneration is deterministic"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cp tests/corpus/*.sbu-sched "$tmp/"
cargo run --quiet --offline --example gen_corpus >/dev/null
for f in tests/corpus/*.sbu-sched; do
    cmp -s "$f" "$tmp/$(basename "$f")" || {
        echo "corpus file $f changed after regeneration" >&2
        exit 1
    }
done

step "native stress smoke (deterministic seed, online monitor)"
cargo run --release --quiet --offline --example stress -- \
    --threads 4 --ops 20000 --seed 7
cargo run --release --quiet --offline --example stress -- \
    --threads 4 --ops 8000 --seed 7 --inject torn-jam
obs_verdict=$(cargo run --release --quiet --offline --features obs --example stress -- \
    --threads 4 --ops 8000 --seed 7 --inject torn-jam)
grep -q "lies injected" <<<"$obs_verdict" || {
    echo "obs-enabled stress verdict did not cite the injection counter" >&2
    exit 1
}

step "crash-restart smoke (durable torture, offline check_durable verdict)"
cargo run --release --quiet --offline --example stress -- \
    --crash-restart --workload recoverable-counter --threads 3 --ops 288 --seed 11
cargo run --release --quiet --offline --example stress -- \
    --crash-restart --workload recoverable-jam --threads 3 --ops 288 --seed 11 \
    --torn seeded:11 --iters 5
cargo run --release --quiet --offline --example stress -- \
    --crash-restart --workload recoverable-jam --threads 3 --ops 288 --seed 7 \
    --eras 6 --torn lying

step "scenario-matrix smoke (3 scenarios x objects x backends; exit 0 = honest cells PASS, adversary cells CAUGHT)"
cargo run --release --quiet --offline -p sbu-bench --bin exp -- scenarios \
    --scenario steady-state,crash-storm,adversary-storm --seed 7 --out "$tmp/scenarios"
for report in SCENARIO_STEADY_STATE_REPORT.md SCENARIO_CRASH_STORM_REPORT.md \
    SCENARIO_ADVERSARY_STORM_REPORT.md BENCH_scenarios.json; do
    [[ -f "$tmp/scenarios/$report" ]] || {
        echo "scenario matrix did not write $report" >&2
        exit 1
    }
done

step "scenario coverage self-compare (two capped same-seed runs must be regression-free)"
cargo run --release --quiet --offline -p sbu-bench --bin exp -- scenarios \
    --scenario steady-state --seed 7 --max-threads 1 --out "$tmp/cov-base" || true
cargo run --release --quiet --offline -p sbu-bench --bin exp -- scenarios \
    --scenario steady-state --seed 7 --max-threads 1 --out "$tmp/cov-cur" || true
cargo run --release --quiet --offline -p sbu-bench --bin exp -- scenarios \
    --compare "$tmp/cov-base/BENCH_scenarios.json" "$tmp/cov-cur/BENCH_scenarios.json"

step "perf smoke (E8 vs checked-in baseline; >30% regression fails)"
if [[ -f benchmarks/BENCH_e8_baseline.json ]]; then
    cargo run --release --quiet --offline -p sbu-bench --bin exp -- \
        e8 --baseline benchmarks/BENCH_e8_baseline.json
else
    echo "benchmarks/BENCH_e8_baseline.json absent; perf smoke skipped"
fi

step "service unit tests (dark config; the obs config ran in the obs-enabled block above)"
cargo test --quiet --offline -p sbu-service

step "service throughput smoke (exp e12 --smoke: 4 shards must not lose to 1 shard at 4 clients)"
rm -f OBS_e12.json
cargo run --release --quiet --offline --features obs -p sbu-bench --bin exp -- e12 --smoke >/dev/null
grep -Eq '"service\.route": [1-9]' OBS_e12.json || {
    echo "OBS_e12.json missing a non-zero service.route counter" >&2
    exit 1
}

step "observability smoke (obs-enabled exp e8 must fire the frontier instruments)"
rm -f OBS_e8.json
cargo run --release --quiet --offline --features obs -p sbu-bench --bin exp -- e8 >/dev/null
grep -Eq '"core\.frontier_hit": [1-9]' OBS_e8.json || {
    echo "OBS_e8.json missing a non-zero core.frontier_hit counter" >&2
    exit 1
}

if [[ "$FULL" == 1 ]]; then
    step "deep exploration sweeps (#[ignore]d tests, release)"
    cargo test --quiet --release --workspace --offline -- --ignored
fi

step "CI green"
