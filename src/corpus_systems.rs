//! The registry of *corpus systems*: named, deterministic model-checking
//! episodes that `.sbu-sched` regression files replay against.
//!
//! A corpus file (see [`sbu_sim::corpus`]) stores only a registry key and a
//! decision script — the code being checked lives here, so a corpus entry
//! keeps meaning the same thing as the implementation evolves (and starts
//! failing loudly if a fix regresses). Each system is a known bug or
//! near-miss from the paper's design space, kept alive as a seeded-bug
//! oracle:
//!
//! * [`ATOMIC_INTERMEDIATE_READ`] — the canonical two-writes-one-read race:
//!   a reader can observe the intermediate value. The simplest possible
//!   counterexample, used to smoke-test the explorer itself.
//! * [`JAM_OBLIVIOUS_BLEND`] — the Section 4 straw-man that jams all bits
//!   of a sticky word without the Figure 2 helping discipline; two
//!   proposals can blend into a value nobody wrote.
//! * [`NAIVE_JAM_STRANDS_WINNER`] — jamming without helping under a crash:
//!   the loser gives up, the crashed winner's remaining bits stay `⊥`
//!   forever, and readers lose wait-freedom.
//! * [`TORN_PERSIST_DROPS_ACKED_JAM`] — the durability straw-man: a reader
//!   acknowledges an observation of a plain (non-recoverable) jam that is
//!   still unfenced when the jammer crashes; `TornPersist::Lose` tears the
//!   bit back to `⊥`, orphaning the acknowledged observation. This is the
//!   bug the `sbu-sticky::recoverable` flush-on-dependence discipline
//!   exists to prevent.
//!
//! [`episode`] runs one script; [`replay_verdict`] adapts the registry to
//! [`sbu_sim::replay_corpus`].

use std::sync::Arc;

use sbu_mem::{DurableMem, Pid, TornPersist, Tri, WordMem};
use sbu_sim::{run_uniform, EpisodeResult, RunOptions, Scripted, SimMem};
use sbu_sticky::JamWord;

/// Registry key: reader may observe an intermediate atomic-register value.
pub const ATOMIC_INTERMEDIATE_READ: &str = "atomic_intermediate_read";
/// Registry key: oblivious sticky-word jamming can blend two proposals.
pub const JAM_OBLIVIOUS_BLEND: &str = "jam_oblivious_blend";
/// Registry key: naive (non-helping) jamming strands a crashed winner.
pub const NAIVE_JAM_STRANDS_WINNER: &str = "naive_jam_strands_winner";
/// Registry key: a crash tears away a jam another processor already acked.
pub const TORN_PERSIST_DROPS_ACKED_JAM: &str = "torn_persist_drops_acked_jam";

/// Every registry key, in replay order.
pub const SYSTEMS: &[&str] = &[
    ATOMIC_INTERMEDIATE_READ,
    JAM_OBLIVIOUS_BLEND,
    NAIVE_JAM_STRANDS_WINNER,
    TORN_PERSIST_DROPS_ACKED_JAM,
];

/// Run `script` against the named system. Returns `None` for unknown keys.
///
/// Every system is deterministic (same script ⇒ same
/// [`EpisodeResult`]) and its verdict is schedule-equivalence invariant, so
/// all of them are valid under both [`sbu_sim::Explorer::explore`] and
/// [`sbu_sim::Explorer::explore_dpor`].
pub fn episode(system: &str, script: &[usize]) -> Option<EpisodeResult> {
    match system {
        ATOMIC_INTERMEDIATE_READ => Some(atomic_intermediate_read(script)),
        JAM_OBLIVIOUS_BLEND => Some(jam_oblivious_blend(script)),
        NAIVE_JAM_STRANDS_WINNER => Some(naive_jam_strands_winner(script)),
        TORN_PERSIST_DROPS_ACKED_JAM => Some(torn_persist_drops_acked_jam(script)),
        _ => None,
    }
}

/// Adapter for [`sbu_sim::replay_corpus`]: just the verdict.
pub fn replay_verdict(system: &str, script: &[usize]) -> Option<Result<(), String>> {
    episode(system, script).map(|e| e.verdict)
}

fn atomic_intermediate_read(script: &[usize]) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let a = mem.alloc_atomic(0);
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec())),
        RunOptions::default(),
        2,
        move |mem, pid| {
            if pid.0 == 0 {
                mem.atomic_write(pid, a, 1);
                mem.atomic_write(pid, a, 2);
                0
            } else {
                mem.atomic_read(pid, a)
            }
        },
    );
    let read = *out.outcomes[1].completed().expect("no crashes scheduled");
    let verdict = if read == 1 {
        Err("read the intermediate value".into())
    } else {
        Ok(())
    };
    EpisodeResult::from_outcome(&out, verdict)
}

fn jam_oblivious_blend(script: &[usize]) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let jw = JamWord::new(&mut mem, 2, 2);
    let jw2 = jw.clone();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec())),
        RunOptions::default(),
        2,
        move |mem, pid| {
            let value = if pid.0 == 0 { 0b01 } else { 0b10 };
            jw2.jam_oblivious(mem, pid, value)
        },
    );
    let verdict = match jw.read(&mem, Pid(0)) {
        Some(v) if v != 0b01 && v != 0b10 => Err(format!("blended into {v:#b}")),
        _ => Ok(()),
    };
    EpisodeResult::from_outcome(&out, verdict)
}

fn naive_jam_strands_winner(script: &[usize]) -> EpisodeResult {
    let mut mem: SimMem<()> = SimMem::new(2);
    let jw = JamWord::new(&mut mem, 2, 2);
    let jw2 = jw.clone();
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
        RunOptions::default(),
        2,
        move |mem, pid| {
            let value = if pid.0 == 0 { 0b11 } else { 0b00 };
            jw2.jam_naive(mem, pid, value)
        },
    );
    // Wait-freedom of readers: once every processor is done (crashed or
    // returned), the word must be fully defined unless *everyone* crashed.
    let any_completed = out.outcomes.iter().any(|o| o.completed().is_some());
    let verdict = if any_completed && jw.read(&mem, Pid(0)).is_none() {
        Err("word left undefined after a completer returned".into())
    } else {
        Ok(())
    };
    EpisodeResult::from_outcome(&out, verdict)
}

fn torn_persist_drops_acked_jam(script: &[usize]) -> EpisodeResult {
    // Plain sticky jam over a durable backend that *loses* unfenced writes
    // at a crash. Pid 0 jams and then fences; pid 1 reads the bit and acks
    // what it saw. If the schedule crashes pid 0 in the jam→fence window
    // after pid 1 already acked a defined observation, the post-run crash
    // bookkeeping tears the bit back to `⊥` — durable linearizability lost.
    let mem: SimMem<()> = SimMem::new(2);
    let mut dmem = DurableMem::with_policy(mem.clone(), TornPersist::Lose);
    let s = dmem.alloc_sticky_bit();
    let dmem = Arc::new(dmem);
    let d2 = Arc::clone(&dmem);
    let out = run_uniform(
        &mem,
        Box::new(Scripted::new(script.to_vec()).with_crashes(1)),
        RunOptions::default(),
        2,
        move |_, pid| {
            if pid.0 == 0 {
                d2.sticky_jam(pid, s, true);
                d2.persist(pid);
                2
            } else {
                match d2.sticky_read(pid, s) {
                    Tri::One => 1,
                    _ => 0,
                }
            }
        },
    );
    let acked_defined = out.outcomes[1].completed() == Some(&1);
    if out.outcomes[0].is_crashed() {
        dmem.crash::<()>(&[Pid(0)]);
    }
    let verdict = if acked_defined && dmem.sticky_read(Pid(1), s) == Tri::Undef {
        Err("acked observation of a jammed bit was torn away at the crash".into())
    } else {
        Ok(())
    };
    EpisodeResult::from_outcome(&out, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_system_is_none() {
        assert!(episode("no_such_system", &[]).is_none());
        assert!(replay_verdict("no_such_system", &[]).is_none());
    }

    #[test]
    fn every_registered_system_runs_the_default_schedule() {
        for system in SYSTEMS {
            let result = episode(system, &[]).expect("registered");
            assert!(
                !result.choice_log.is_empty(),
                "{system} recorded no choices"
            );
            assert_eq!(result.choice_log.len(), result.access_log.len());
        }
    }

    #[test]
    fn every_system_has_a_counterexample_and_a_passing_schedule() {
        for system in SYSTEMS {
            let explorer = sbu_sim::Explorer::new(200_000);
            let report = explorer.explore_dpor(|script| episode(system, script).unwrap());
            report.assert_some_failure();
            // The default schedule itself is clean for all three systems.
            assert_eq!(episode(system, &[]).unwrap().verdict, Ok(()));
        }
    }
}
