//! # sticky-universality
//!
//! A from-scratch Rust implementation of **"Sticky Bits and Universality of
//! Consensus"** (Serge A. Plotkin, PODC 1989): the Sticky Bit primitive,
//! the helping paradigm, and the bounded-memory universal construction
//! turning any *safe* sequential object into a *wait-free atomic* one —
//! plus every substrate the paper relies on and every baseline it argues
//! against.
//!
//! This crate is the façade; the implementation lives in focused crates,
//! re-exported here:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`spec`] | `sbu-spec` | sequential specifications, histories, the linearizability checker (Def 3.1), the §2 schedule formalism |
//! | [`mem`] | `sbu-mem` | primitive registers (safe/atomic/sticky/TAS/RMW) and the native atomics backend |
//! | [`sim`] | `sbu-sim` | the deterministic adversarial simulator: conductor scheduling, safe-register overlap semantics, crash injection, schedule exploration |
//! | [`sticky`] | `sbu-sticky` | sticky bytes (Fig. 2), leader election, consensus objects, randomized consensus, ASB-from-consensus |
//! | [`rmw`] | `sbu-rmw` | the RMW hierarchy, its empirical separations, and its collapse at 3 values |
//! | [`core`] | `sbu-core` | **the universal constructions** (bounded Θ(n²), unbounded baseline, lock-based strawman) and ready-made wait-free objects |
//! | [`stress`] | `sbu-stress` | native multi-thread torture harness with online windowed linearizability monitoring and fault injection |
//! | [`obs`] | `sbu-obs` | observability: per-thread metrics registry, bounded op-trace rings, the `OBS_*.json`/`BENCH_*.json` serializer (all no-ops unless the `obs` feature is on) |
//!
//! ## Quickstart
//!
//! ```
//! use sticky_universality::prelude::*;
//!
//! // A wait-free FIFO queue for 4 threads, from sticky bits + safe
//! // registers, on real atomics:
//! let mut mem = NativeMem::new();
//! let queue = WaitFreeQueue::new(Universal::builder(4).build(&mut mem, QueueSpec::new()));
//! queue.enqueue(&mem, Pid(0), 42);
//! assert_eq!(queue.dequeue(&mem, Pid(1)), Some(42));
//! ```
//!
//! The builder takes the two knobs most callers skip:
//! [`UniversalConfig`](sbu_core::bounded::UniversalConfig) overrides via
//! `.config(…)`, and a metrics registry via `.obs(&registry)` (see
//! [`obs`]; recording is free when detached and compiled out entirely
//! without the `obs` cargo feature).
//!
//! See `examples/` for runnable demos and `EXPERIMENTS.md` for the
//! paper-claim-by-claim reproduction record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus_systems;

pub use sbu_core as core;
pub use sbu_mem as mem;
pub use sbu_obs as obs;
pub use sbu_rmw as rmw;
pub use sbu_sim as sim;
pub use sbu_spec as spec;
pub use sbu_sticky as sticky;
pub use sbu_stress as stress;

/// The most commonly used items in one import.
pub mod prelude {
    pub use sbu_core::bounded::UniversalConfig;
    pub use sbu_core::objects::{
        WaitFreeBank, WaitFreeCas, WaitFreeCounter, WaitFreeDeque, WaitFreeKv,
        WaitFreePriorityQueue, WaitFreeQueue, WaitFreeSet, WaitFreeSnapshot, WaitFreeStack,
    };
    pub use sbu_core::{
        CellPayload, ConsensusUniversal, SpinLockUniversal, UnboundedUniversal, Universal,
        UniversalObject,
    };
    pub use sbu_mem::native::NativeMem;
    pub use sbu_mem::{DataMem, JamOutcome, Pid, Tri, Word, WordMem};
    pub use sbu_sim::{
        run, run_uniform, Explorer, HistoryRecorder, RandomAdversary, RoundRobin, RunOptions,
        Scripted, SimMem,
    };
    pub use sbu_spec::specs::{
        BankSpec, CasSpec, CounterOp, CounterSpec, DequeSpec, KvSpec, PriorityQueueSpec, QueueOp,
        QueueSpec, RegisterSpec, SetSpec, SnapshotSpec, StackSpec, StickySpec,
    };
    pub use sbu_spec::SequentialSpec;
    pub use sbu_sticky::{
        BitwiseConsensus, Consensus, JamWord, LeaderElection, RandomizedConsensus,
    };
}
